package pmc

import (
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// Warm-start support for topology churn. The greedy selection for a
// component is a deterministic function of its exact content (links + paths)
// and the selection-relevant options, so the only reuse that preserves
// bit-identical output is content-identical reuse: a component that returns
// to a previously solved form (a link flapping down and back up) hits the
// memo and skips construction entirely. Seeding a *changed* component from a
// related prior selection cannot reproduce the cold greedy's picks without
// re-running it, so seeded replay is a separate, explicitly approximate mode
// (Memo.EnableSeeding): selections are replayed as pre-picks and the greedy
// repairs coverage/identifiability on top. Seeded results always satisfy the
// same α/β targets (the greedy runs to completion) but may differ from — and
// be slightly larger than — a cold construction; it is kept off every path
// that promises bit-identical recompute.

// MemoStats reports memo effectiveness.
type MemoStats struct {
	Hits    int64 // component solved by exact content reuse
	Misses  int64 // component solved cold (or seeded)
	Seeded  int64 // misses that warm-started from a related selection
	Entries int   // current cached components
	Bytes   int64 // approximate retained bytes
}

// memoOptKey is the selection-relevant subset of Options: two runs with
// equal keys and equal component content make identical picks.
type memoOptKey struct {
	alpha, beta             int
	lazy, symmetry, noEeven bool
}

func optKeyOf(opt Options) memoOptKey {
	return memoOptKey{opt.Alpha, opt.Beta, opt.Lazy, opt.Symmetry, opt.NoEvenness}
}

type memoEntry struct {
	hash        uint64
	key         memoOptKey
	links       []topo.LinkID
	paths       []int32
	selected    []int
	coverageMet bool
	identMet    bool
	bytes       int64
}

// Memo is a bounded cache of per-component selections keyed by exact
// component content. It is engine-local (each shard process owns one); the
// cached selection never crosses the wire differently from a fresh one, so
// no RPC schema changes are needed.
type Memo struct {
	mu       sync.Mutex
	entries  []*memoEntry // insertion order; evicted front-first
	maxEnts  int
	maxBytes int64
	bytes    int64
	seeding  bool

	hits, misses, seeded int64
}

// DefaultMemoBytes bounds retained component content to 256 MiB.
const DefaultMemoBytes = 256 << 20

// NewMemo returns a memo holding at most maxEntries selections (0 means 64)
// within a DefaultMemoBytes budget.
func NewMemo(maxEntries int) *Memo {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &Memo{maxEnts: maxEntries, maxBytes: DefaultMemoBytes}
}

// EnableSeeding turns on the approximate related-component warm start: when
// a component misses the memo but its link set is a subset or superset of a
// cached component's (same options), the cached selection seeds the greedy.
// Results then meet the α/β targets but are not guaranteed bit-identical to
// a cold construction — do not enable on paths that promise that.
func (m *Memo) EnableSeeding() {
	m.mu.Lock()
	m.seeding = true
	m.mu.Unlock()
}

// Stats returns a snapshot of memo counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Seeded: m.seeded, Entries: len(m.entries), Bytes: m.bytes}
}

// contentHash digests the selection-relevant identity of a subproblem.
func contentHash(comp *route.Component, key memoOptKey) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(key.alpha))
	put(uint64(key.beta))
	flags := uint64(0)
	if key.lazy {
		flags |= 1
	}
	if key.symmetry {
		flags |= 2
	}
	if key.noEeven {
		flags |= 4
	}
	put(flags)
	put(uint64(len(comp.Links)))
	for _, l := range comp.Links {
		put(uint64(l))
	}
	put(uint64(len(comp.Paths)))
	for _, p := range comp.Paths {
		put(uint64(p))
	}
	return h.Sum64()
}

func linksEqual(a, b []topo.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the cached result for an exactly matching component, or nil.
func (m *Memo) get(comp *route.Component, key memoOptKey, hash uint64) *memoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		if e.hash == hash && e.key == key && linksEqual(e.links, comp.Links) && pathsEqual(e.paths, comp.Paths) {
			m.hits++
			return e
		}
	}
	m.misses++
	return nil
}

// seedFor returns a related prior selection for an approximate warm start:
// the most recently cached entry (same options) whose link set is a subset
// or superset of comp's. Nil when seeding is disabled or nothing relates.
func (m *Memo) seedFor(comp *route.Component, key memoOptKey) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.seeding {
		return nil
	}
	for i := len(m.entries) - 1; i >= 0; i-- {
		e := m.entries[i]
		if e.key != key {
			continue
		}
		if linkSubset(e.links, comp.Links) || linkSubset(comp.Links, e.links) {
			return e.selected
		}
	}
	return nil
}

// linkSubset reports whether sorted a ⊆ sorted b.
func linkSubset(a, b []topo.LinkID) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// store caches a freshly solved component, evicting oldest entries beyond
// the entry/byte budgets.
func (m *Memo) store(comp *route.Component, key memoOptKey, hash uint64, cr *componentResult) {
	e := &memoEntry{
		hash:        hash,
		key:         key,
		links:       append([]topo.LinkID(nil), comp.Links...),
		paths:       append([]int32(nil), comp.Paths...),
		selected:    append([]int(nil), cr.selected...),
		coverageMet: cr.coverageMet,
		identMet:    cr.identMet,
	}
	e.bytes = int64(len(e.links)*8 + len(e.paths)*4 + len(e.selected)*8)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, e)
	m.bytes += e.bytes
	for (len(m.entries) > m.maxEnts || m.bytes > m.maxBytes) && len(m.entries) > 1 {
		m.bytes -= m.entries[0].bytes
		m.entries = m.entries[1:]
	}
}

// ConstructComponentsWarm is ConstructComponents with a memo: components
// whose exact content was solved before reuse the cached selection verbatim
// (bit-identical by determinism); the rest are solved cold — or seeded from
// a related selection when the memo has seeding enabled — and cached. A nil
// memo degrades to ConstructComponents.
func ConstructComponentsWarm(ps route.PathSet, csr *route.CSR, comps []route.Component, numLinks int, opt Options, memo *Memo) (*Result, error) {
	start := time.Now()
	if memo == nil {
		return constructComponents(ps, csr, comps, numLinks, opt, start)
	}
	sym, err := prepareComponents(ps, comps, opt)
	if err != nil {
		return nil, err
	}
	key := optKeyOf(opt)

	hashes := make([]uint64, len(comps))
	results := make([]*componentResult, len(comps))
	var missIdx []int
	for ci := range comps {
		hashes[ci] = contentHash(&comps[ci], key)
		if e := memo.get(&comps[ci], key, hashes[ci]); e != nil {
			results[ci] = &componentResult{
				selected:    e.selected,
				coverageMet: e.coverageMet,
				identMet:    e.identMet,
			}
		} else {
			missIdx = append(missIdx, ci)
		}
	}

	if len(missIdx) > 0 {
		workers := opt.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(missIdx) {
			workers = len(missIdx)
		}
		localOf := make([]int32, numLinks)
		for i := range localOf {
			localOf[i] = -1
		}
		for _, ci := range missIdx {
			for li, l := range comps[ci].Links {
				localOf[l] = int32(li)
			}
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		errs := make([]error, len(missIdx))
		for mi, ci := range missIdx {
			wg.Add(1)
			sem <- struct{}{}
			go func(mi, ci int) {
				defer wg.Done()
				defer func() { <-sem }()
				seeds := memo.seedFor(&comps[ci], key)
				var cr *componentResult
				cr, errs[mi] = solveComponentSeeded(sym, csr, &comps[ci], localOf, opt, seeds)
				if errs[mi] != nil {
					return
				}
				if len(seeds) > 0 {
					memo.mu.Lock()
					memo.seeded++
					memo.mu.Unlock()
				}
				memo.store(&comps[ci], key, hashes[ci], cr)
				results[ci] = cr
			}(mi, ci)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	res := &Result{Stats: Stats{
		Components:  len(comps),
		CoverageMet: true,
		IdentMet:    opt.Beta >= 1,
	}}
	for _, cr := range results {
		res.Selected = append(res.Selected, cr.selected...)
		res.Stats.Candidates += cr.candidates
		res.Stats.ScoreEvals += cr.evals
		res.Stats.Reseeds += cr.reseeds
		res.Stats.CoverageMet = res.Stats.CoverageMet && cr.coverageMet
		res.Stats.IdentMet = res.Stats.IdentMet && cr.identMet
	}
	sort.Ints(res.Selected)
	res.Stats.Selected = len(res.Selected)
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// solveComponentSeeded is solveComponent with optional pre-picks: seed paths
// (global indices from a related prior selection) that exist in this
// component and still have positive marginal gain are selected up front, in
// one step, before the greedy runs. With no seeds it is solveComponent.
func solveComponentSeeded(sym route.Symmetric, csr *route.CSR, comp *route.Component, localOf []int32, opt Options, seeds []int) (*componentResult, error) {
	if len(seeds) == 0 {
		return solveComponent(sym, csr, comp, localOf, opt)
	}
	cs := newComponentState(csr, comp, localOf, opt)
	cs.beginStep()
	for _, pid := range seeds {
		if cs.done() {
			break
		}
		r := cs.ar.rowOf(int32(pid))
		if r < 0 || cs.selected.get(r) {
			continue
		}
		if _, marginalGain := cs.scoreRow(r); marginalGain {
			cs.sel(r)
		}
	}
	cs.endStep()

	var candRows []int32
	if sym != nil {
		candRows = make([]int32, 0, len(comp.Paths)/2)
		for r, pid := range comp.Paths {
			if sym.IsRepresentative(int(pid)) {
				candRows = append(candRows, int32(r))
			}
		}
	} else {
		candRows = make([]int32, len(comp.Paths))
		for r := range candRows {
			candRows[r] = int32(r)
		}
	}

	cr := &componentResult{candidates: len(candRows)}
	if opt.Lazy {
		cr.reseeds = lazyGreedy(cs, sym, candRows)
	} else {
		strawmanGreedy(cs, sym, candRows)
	}

	cr.evals = cs.evals
	cr.coverageMet = cs.uncovered == 0
	cr.identMet = opt.Beta == 0 || cs.part.Done()
	cr.selected = make([]int, 0, cs.nSelected)
	for r, pid := range cs.ar.pathIDs {
		if cs.selected.get(int32(r)) {
			cr.selected = append(cr.selected, int(pid))
		}
	}
	return cr, nil
}
