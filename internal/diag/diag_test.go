package diag

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

func testMatrix() *route.Probes {
	// Fig. 3 matrix: p0={0,1}, p1={0,2}, p2={2}.
	return route.NewProbesFromLinks([][]topo.LinkID{{0, 1}, {0, 2}, {2}}, 3)
}

func TestRunWindowLocalizes(t *testing.T) {
	d := New(Options{Window: time.Hour, PLL: pll.DefaultConfig()})
	d.SetMatrix(testMatrix(), 1)
	d.Ingest(&pinger.Report{Node: 9, Version: 1, Results: []pinger.PathReport{
		{PathID: 0, Sent: 100, Lost: 90},
		{PathID: 1, Sent: 100, Lost: 95},
		{PathID: 2, Sent: 100, Lost: 0},
	}})
	alert := d.RunWindow()
	if alert == nil {
		t.Fatal("no alert")
	}
	if len(alert.Bad) != 1 || alert.Bad[0].Link != 0 {
		t.Fatalf("alert %+v, want link 0", alert.Bad)
	}
	if alert.LossyPaths != 2 {
		t.Fatalf("lossy paths %d, want 2", alert.LossyPaths)
	}
	// The window drained the accumulator: a second run yields nothing.
	if alert2 := d.RunWindow(); alert2 != nil {
		t.Fatalf("second window produced %+v from stale data", alert2)
	}
}

func TestReportsMergeAcrossPingers(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	// Two pingers report halves of the same path's traffic.
	d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 0, Sent: 50, Lost: 25}}})
	d.Ingest(&pinger.Report{Node: 2, Results: []pinger.PathReport{{PathID: 0, Sent: 50, Lost: 30}}})
	d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 1, Sent: 100, Lost: 60}}})
	d.Ingest(&pinger.Report{Node: 2, Results: []pinger.PathReport{{PathID: 2, Sent: 100, Lost: 0}}})
	alert := d.RunWindow()
	if alert == nil || len(alert.Bad) != 1 || alert.Bad[0].Link != 0 {
		t.Fatalf("merged window: %+v", alert)
	}
	if d.Reports() != 4 {
		t.Fatalf("reports = %d", d.Reports())
	}
}

func TestHTTPReportAndAlerts(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	rep := pinger.Report{Node: 5, Version: 1, Results: []pinger.PathReport{
		{PathID: 0, Sent: 10, Lost: 10},
		{PathID: 1, Sent: 10, Lost: 10},
		{PathID: 2, Sent: 10, Lost: 0},
	}}
	body, _ := json.Marshal(rep)
	resp, err := srv.Client().Post(srv.URL+"/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("report rejected: %s", resp.Status)
	}
	d.RunWindow()

	resp, err = srv.Client().Get(srv.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var alerts []Alert
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || len(alerts[0].Bad) != 1 || alerts[0].Bad[0].Link != 0 {
		t.Fatalf("alerts over HTTP: %+v", alerts)
	}
}

func TestEmptyWindowNoAlert(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	if alert := d.RunWindow(); alert != nil {
		t.Fatalf("alert from empty window: %+v", alert)
	}
}

func TestNoMatrixNoCrash(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 0, Sent: 5, Lost: 5}}})
	if alert := d.RunWindow(); alert != nil {
		t.Fatalf("alert without a matrix: %+v", alert)
	}
}

func TestAlertNamesEndpoints(t *testing.T) {
	f := topo.MustFattree(4)
	d := New(Options{Window: time.Hour, Topo: f.Topology})
	links := [][]topo.LinkID{{f.SwitchLinks()[0]}}
	d.SetMatrix(route.NewProbesFromLinks(links, f.NumLinks()), 1)
	d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 0, Sent: 100, Lost: 100}}})
	alert := d.RunWindow()
	if alert == nil || len(alert.Bad) != 1 {
		t.Fatalf("alert: %+v", alert)
	}
	if alert.Bad[0].A == "" || alert.Bad[0].B == "" {
		t.Fatal("endpoints not named")
	}
}

// TestSlowPassCatchesLowRateLoss is the §6.4 remedy: a loss too small to
// clear the per-window MinLoss threshold accumulates across windows and is
// confirmed by the long-window pass.
func TestSlowPassCatchesLowRateLoss(t *testing.T) {
	cfg := pll.DefaultConfig()
	cfg.MinLoss = 3 // one loss per window is not confirmable
	d := New(Options{Window: time.Hour, PLL: cfg, SlowEvery: 5})
	d.SetMatrix(testMatrix(), 1)

	for w := 0; w < 5; w++ {
		d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{
			{PathID: 0, Sent: 50, Lost: 1},
			{PathID: 1, Sent: 50, Lost: 1},
			{PathID: 2, Sent: 50, Lost: 0},
		}})
		d.RunWindow()
	}
	var fastBad, slowBad int
	var slowAlert *Alert
	for i := range d.Alerts() {
		a := d.Alerts()[i]
		if a.Slow {
			slowBad += len(a.Bad)
			slowAlert = &a
		} else {
			fastBad += len(a.Bad)
		}
	}
	if fastBad != 0 {
		t.Fatalf("fast windows confirmed %d links below the loss floor", fastBad)
	}
	if slowAlert == nil || slowBad == 0 {
		t.Fatalf("slow pass missed the accumulated low-rate loss: %+v", d.Alerts())
	}
	if slowAlert.Bad[0].Link != 0 {
		t.Fatalf("slow pass blamed %d, want link 0", slowAlert.Bad[0].Link)
	}
}

// TestAlertCarriesLossClass: verdicts are classified (§7).
func TestAlertCarriesLossClass(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	d.Ingest(&pinger.Report{Node: 9, Results: []pinger.PathReport{
		{PathID: 0, Sent: 100, Lost: 100},
		{PathID: 1, Sent: 100, Lost: 99},
		{PathID: 2, Sent: 100, Lost: 0},
	}})
	alert := d.RunWindow()
	if alert == nil || len(alert.Bad) != 1 {
		t.Fatalf("alert: %+v", alert)
	}
	if alert.Bad[0].Class != "full" {
		t.Fatalf("class = %q, want full", alert.Bad[0].Class)
	}
}

// TestReportHandlerRejectsMalformed pins the /report error contract:
// undecodable or impossible payloads answer 400 with a JSON error body,
// bump diag_malformed_reports, and leave the accumulator untouched.
func TestReportHandlerRejectsMalformed(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	before := metrics.Counters()["diag_malformed_reports"]

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/report", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("{not json")
	var eb httpx.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error == "" {
		t.Fatalf("garbage payload: status %d body %+v, want 400 with error", resp.StatusCode, eb)
	}

	resp = post(`{"node":1,"results":[{"path_id":0,"sent":10,"lost":50}]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lost > sent: status %d, want 400", resp.StatusCode)
	}

	resp = post(`{"node":1,"results":[{"path_id":0,"sent":-5,"lost":0}]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative sent: status %d, want 400", resp.StatusCode)
	}

	getResp, err := http.Get(srv.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /report: status %d, want 405", getResp.StatusCode)
	}

	if got := metrics.Counters()["diag_malformed_reports"]; got != before+4 {
		t.Fatalf("diag_malformed_reports = %d, want %d (+4)", got, before+4)
	}
	if d.Reports() != 0 {
		t.Fatalf("rejected reports were ingested: %d", d.Reports())
	}

	resp = post(`{"node":1,"results":[{"path_id":0,"sent":10,"lost":5}]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid report: status %d, want 204", resp.StatusCode)
	}
	if d.Reports() != 1 {
		t.Fatalf("valid report not ingested")
	}
	if got := metrics.Counters()["diag_malformed_reports"]; got != before+4 {
		t.Fatalf("valid report bumped the malformed counter")
	}

	// The counters are operator-visible over GET /metrics — Prometheus text
	// by default, the JSON snapshot on request.
	mResp, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snapshot obs.Snapshot
	if err := json.NewDecoder(mResp.Body).Decode(&snapshot); err != nil {
		t.Fatalf("/metrics?format=json is not JSON: %v", err)
	}
	mResp.Body.Close()
	if snapshot.Counters["diag_malformed_reports"] != before+4 {
		t.Fatalf("/metrics reports %d malformed, want %d", snapshot.Counters["diag_malformed_reports"], before+4)
	}
	tResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(tResp.Body)
	tResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "# TYPE diag_malformed_reports counter") {
		t.Fatalf("/metrics text exposition is missing the malformed-reports counter:\n%s", text)
	}
}

// TestShardedWindowMatchesUnsharded runs the same reports through an
// unsharded diagnoser and one on a 3-shard plane; the alerts must agree
// verdict for verdict.
func TestShardedWindowMatchesUnsharded(t *testing.T) {
	feed := func(d *Diagnoser) *Alert {
		d.SetMatrix(testMatrix(), 1)
		d.Ingest(&pinger.Report{Node: 9, Version: 1, Results: []pinger.PathReport{
			{PathID: 0, Sent: 100, Lost: 90},
			{PathID: 1, Sent: 100, Lost: 95},
			{PathID: 2, Sent: 100, Lost: 0},
		}})
		return d.RunWindow()
	}
	plain := feed(New(Options{Window: time.Hour}))
	sharded := feed(New(Options{Window: time.Hour, Shards: 3}))
	if plain == nil || sharded == nil {
		t.Fatal("missing alert")
	}
	if len(plain.Bad) != len(sharded.Bad) ||
		plain.LossyPaths != sharded.LossyPaths ||
		plain.Unexplained != sharded.Unexplained {
		t.Fatalf("sharded alert differs: %+v vs %+v", sharded, plain)
	}
	for i := range plain.Bad {
		if plain.Bad[i].Link != sharded.Bad[i].Link || plain.Bad[i].Rate != sharded.Bad[i].Rate {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, sharded.Bad[i], plain.Bad[i])
		}
	}
}
