// Package diag implements deTector's diagnoser (paper §3.1, §6.1): it
// collects pinger reports over HTTP, windows them, asks the watchdog for
// unhealthy servers, fetches the route-level probe matrix from the
// controller, runs PLL once per window and publishes alerts.
package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// malformedReports counts report payloads the diagnoser rejected —
// undecodable JSON or counters that cannot be real (negative, or more
// losses than probes). Rejections answer 400 with a JSON error instead of
// silently dropping data, and this counter makes a sick agent visible.
var malformedReports = metrics.NewCounter("diag_malformed_reports")

// Diagnoser stage histograms: the window pipeline's per-cycle timing
// (report ingest, window close-out, verdict classification; the localize
// stage is observed by the shard plane it runs on).
var (
	stageIngest      = obs.Stages.With("ingest")
	stageWindowClose = obs.Stages.With("window_close")
	stageClassify    = obs.Stages.With("classify")
)

// LinkVerdict is one suspected link in an alert.
type LinkVerdict struct {
	Link topo.LinkID `json:"link"`
	// A and B name the endpoints for the operator.
	A    string  `json:"a,omitempty"`
	B    string  `json:"b,omitempty"`
	Rate float64 `json:"rate"`
	// Class is the inferred loss kind (full / deterministic-partial /
	// random-partial / unknown), the paper's §7 diagnosis-scoping idea.
	Class string `json:"class,omitempty"`
	// Verdict places the link in the multi-signal lattice (lossy /
	// silent-partial / congested / delayed / flapping): Class says how the
	// link loses, Verdict says whether it is dying or merely busy.
	Verdict string `json:"verdict,omitempty"`
}

// Alert is the outcome of one localization window.
type Alert struct {
	Time        time.Time     `json:"time"`
	Version     int           `json:"version"`
	Bad         []LinkVerdict `json:"bad"`
	LossyPaths  int           `json:"lossy_paths"`
	Unexplained int           `json:"unexplained"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	// Slow marks alerts from the long-window pass, which accumulates
	// several fast windows to expose losses of extremely low rate that a
	// single window misses (paper §6.4's false-negative remedy).
	Slow bool `json:"slow,omitempty"`
	// Soft lists congested and delayed links: advisories, not link-down
	// alerts. A localized link whose lattice verdict is congestion or
	// delay lands here instead of Bad, so transient queue pressure never
	// pages as a dead link; the signal-localization pass adds links whose
	// faults lose nothing at all.
	Soft []LinkVerdict `json:"soft,omitempty"`
}

// Options configures the diagnoser.
type Options struct {
	// Window is the localization period (paper: 30 s; tests: milliseconds).
	Window time.Duration
	// ControllerURL serves /matrix; WatchdogURL serves /health. Either may
	// be empty when the corresponding input is injected directly.
	ControllerURL string
	WatchdogURL   string
	// PLL is the localization configuration.
	PLL pll.Config
	// SlowEvery, when positive, runs a long-window pass every SlowEvery
	// fast windows over their accumulated counters: the extra samples
	// expose low-rate losses a single window cannot confirm (§6.4
	// suggests 10-minute windows against 30-second fast windows, i.e.
	// SlowEvery = 20).
	SlowEvery int
	// Shards, when > 1, runs each localization pass on the sharded
	// diagnosis plane: observations route to per-shard PLL localizers by
	// path owner (connected component of the probe matrix) and the
	// verdicts merge — bit-identical to one global pll.Localize.
	Shards int
	// ShardEndpoints lists remote shard service URLs (internal/shardrpc).
	// When set, each shard's localization pass dispatches over the
	// transport instead of running locally (falling back to local
	// execution — same algorithm, same verdicts — when a service fails
	// mid-window); Shards is implied (= len(ShardEndpoints)).
	ShardEndpoints []string
	// ShardWire selects the transport codec for ShardEndpoints clients
	// (shardrpc.WireAuto/WireJSON/WireBinary; default auto-negotiate).
	ShardWire string
	// HTTPClient overrides the default client.
	HTTPClient *http.Client
	// Topo, when set, lets alerts name link endpoints.
	Topo *topo.Topology
	// Signals tunes the multi-signal verdict lattice; zero fields take
	// pll.DefaultSignalConfig.
	Signals pll.SignalConfig
	// LinkCounters, when set, exposes per-window switch drop-counter
	// deltas (the SNMP side channel) so the lattice can split observed
	// loss into counted (lossy) and silent (gray).
	LinkCounters pll.LinkCounters
	// HistoryWindows bounds the per-path loss-rate history kept for flap
	// detection (default 12 windows).
	HistoryWindows int
}

// Diagnoser aggregates reports and localizes per window.
type Diagnoser struct {
	opts    Options
	client  *http.Client
	shards  int // effective shard count (Shards or len(ShardEndpoints))
	clients map[int]shard.ShardClient
	tr      *obs.Tracer

	mu          sync.Mutex
	matrix      *route.Probes
	version     int
	plane       *shard.Plane // lazily built per matrix when opts.Shards > 1
	planeFor    *route.Probes
	acc         map[uint32]*counter  // pathID -> window counters
	slowAcc     map[uint32]*counter  // multi-window accumulation
	slowWindows int                  // fast windows since last slow pass
	hist        map[uint32][]float64 // per-path loss rates of past windows
	rttBase     map[uint32]int64     // per-path healthy-baseline mean RTT
	alerts      []Alert
	reports     int64
	stopped     bool
	stopChan    chan struct{}
	done        sync.WaitGroup
}

// counter accumulates one path's window: probe counters plus
// delivered-weighted signal sums, so multiple reports for the same path
// (several pingers, or several sub-windows) merge into honest means.
type counter struct {
	sent, lost int
	// acked weights the ECN sum; rttW weights the latency sums (older
	// pingers report no RTT — their deliveries must not drag the mean).
	acked, rttW    float64
	rttSum, jitSum float64
	ecnSum         float64
}

// New creates a diagnoser; call Run to start the window loop, or drive
// windows manually with RunWindow in tests.
func New(opts Options) *Diagnoser {
	if opts.Window <= 0 {
		opts.Window = 30 * time.Second
	}
	if opts.PLL.HitRatio == 0 {
		opts.PLL = pll.DefaultConfig()
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	d := &Diagnoser{
		opts: opts, client: client,
		shards:   opts.Shards,
		tr:       obs.NewTracer("diag", 16),
		acc:      make(map[uint32]*counter),
		slowAcc:  make(map[uint32]*counter),
		hist:     make(map[uint32][]float64),
		rttBase:  make(map[uint32]int64),
		stopChan: make(chan struct{}),
	}
	if len(opts.ShardEndpoints) > 0 {
		d.shards = len(opts.ShardEndpoints)
		d.clients = make(map[int]shard.ShardClient, d.shards)
		for i, ep := range opts.ShardEndpoints {
			d.clients[i] = shardrpc.Dial(i, ep, shardrpc.ClientOptions{Wire: opts.ShardWire})
		}
		d.negotiateCodecs()
	}
	return d
}

// negotiateCodecs pings every shard client in the background. The
// diagnoser runs no heartbeat prober (liveness is the controller
// coordinator's job), but codec negotiation also happens at ping time —
// without this, an auto-wire diagnoser would ship every localize window
// as JSON forever. Best-effort: a failed ping just leaves that client on
// the JSON fallback, and the plane's local-execution fallback covers a
// shard that is really down.
func (d *Diagnoser) negotiateCodecs() {
	for _, cl := range d.clients {
		go func(cl shard.ShardClient) { _ = cl.Ping() }(cl)
	}
}

// SetMatrix injects the probe matrix directly (in-process alternative to
// the /matrix fetch).
func (d *Diagnoser) SetMatrix(m *route.Probes, version int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.matrix = m
	d.version = version
}

// Tracer exposes the diagnoser's window tracer (the /statusz source).
func (d *Diagnoser) Tracer() *obs.Tracer { return d.tr }

// Ingest merges one pinger report (handler and tests share it).
func (d *Diagnoser) Ingest(rep *pinger.Report) {
	start := time.Now()
	defer func() { stageIngest.Observe(time.Since(start)) }()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reports++
	for _, r := range rep.Results {
		c := d.acc[r.PathID]
		if c == nil {
			c = &counter{}
			d.acc[r.PathID] = c
		}
		c.sent += r.Sent
		c.lost += r.Lost
		if del := float64(r.Sent - r.Lost); del > 0 {
			c.acked += del
			c.ecnSum += r.ECNFrac * del
			if r.MeanRTTNS > 0 {
				c.rttW += del
				c.rttSum += float64(r.MeanRTTNS) * del
				c.jitSum += float64(r.JitterNS) * del
			}
		}
	}
}

// Reports returns how many reports arrived (monitoring/testing).
func (d *Diagnoser) Reports() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reports
}

// validateReport rejects counters and signals that cannot describe a real
// window: negative counters, more losses than probes, negative latencies,
// non-finite or out-of-range ECN fractions.
func validateReport(rep *pinger.Report) error {
	for i, pr := range rep.Results {
		if pr.Sent < 0 || pr.Lost < 0 {
			return fmt.Errorf("result %d (path %d): negative counters sent=%d lost=%d",
				i, pr.PathID, pr.Sent, pr.Lost)
		}
		if pr.Lost > pr.Sent {
			return fmt.Errorf("result %d (path %d): lost %d exceeds sent %d",
				i, pr.PathID, pr.Lost, pr.Sent)
		}
		if pr.MeanRTTNS < 0 || pr.JitterNS < 0 {
			return fmt.Errorf("result %d (path %d): negative latency mean_rtt_ns=%d jitter_ns=%d",
				i, pr.PathID, pr.MeanRTTNS, pr.JitterNS)
		}
		if math.IsNaN(pr.ECNFrac) || math.IsInf(pr.ECNFrac, 0) || pr.ECNFrac < 0 || pr.ECNFrac > 1 {
			return fmt.Errorf("result %d (path %d): ECN fraction %v outside [0,1]",
				i, pr.PathID, pr.ECNFrac)
		}
	}
	return nil
}

// Handler serves POST /report and GET /alerts. Malformed reports answer
// 400 with a JSON error body and bump diag_malformed_reports — a silent
// drop would leave a sick pinger indistinguishable from a healthy quiet
// one.
func (d *Diagnoser) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			malformedReports.Inc()
			return
		}
		var rep pinger.Report
		if ct := r.Header.Get("Content-Type"); ct == shardrpc.ContentTypeBinary {
			// The v2 binary report frame, same codec as the shard plane.
			lim := shardrpc.DefaultLimits()
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, lim.MaxBodyBytes))
			if err != nil {
				malformedReports.Inc()
				httpx.Error(w, http.StatusRequestEntityTooLarge, "report body too large: %v", err)
				return
			}
			wr, err := shardrpc.DecodeReportBinary(body, lim.MaxBodyBytes)
			if err != nil {
				malformedReports.Inc()
				httpx.Error(w, http.StatusBadRequest, "undecodable report: %v", err)
				return
			}
			rep = pinger.Report{Node: wr.Node, Version: wr.Version, EndNS: wr.EndNS,
				Results: make([]pinger.PathReport, len(wr.Results))}
			for i, res := range wr.Results {
				rep.Results[i] = pinger.PathReport{PathID: res.PathID, Sent: res.Sent, Lost: res.Lost,
					MeanRTTNS: res.MeanRTTNS, JitterNS: res.JitterNS, ECNFrac: res.ECNFrac}
			}
		} else if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			malformedReports.Inc()
			httpx.Error(w, http.StatusBadRequest, "undecodable report: %v", err)
			return
		}
		if err := validateReport(&rep); err != nil {
			malformedReports.Inc()
			httpx.Error(w, http.StatusBadRequest, "invalid report: %v", err)
			return
		}
		d.Ingest(&rep)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		httpx.WriteJSON(w, d.Alerts())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.MetricsHandler()(w, r)
	})
	mux.HandleFunc("/healthz", obs.HealthzHandler(func() obs.Health {
		h := obs.Health{Status: "ok", Service: "diag"}
		d.mu.Lock()
		if d.matrix == nil {
			h.Status = "degraded"
			h.Detail = "no probe matrix yet"
		}
		d.mu.Unlock()
		return h
	}))
	mux.HandleFunc("/statusz", obs.StatuszHandler("diag", d.tr, func() any {
		d.mu.Lock()
		defer d.mu.Unlock()
		return map[string]any{
			"version": d.version,
			"reports": d.reports,
			"alerts":  len(d.alerts),
			"shards":  d.shards,
		}
	}))
	return mux
}

// Run drives the window loop until Stop.
func (d *Diagnoser) Run() {
	d.done.Add(1)
	go func() {
		defer d.done.Done()
		tick := time.NewTicker(d.opts.Window)
		defer tick.Stop()
		for {
			select {
			case <-d.stopChan:
				return
			case <-tick.C:
				d.RunWindow()
			}
		}
	}()
}

// Stop halts the window loop.
func (d *Diagnoser) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()
	close(d.stopChan)
	d.done.Wait()
	for _, cl := range d.clients {
		cl.Close()
	}
}

// RunWindow executes one localization pass over the accumulated reports.
func (d *Diagnoser) RunWindow() *Alert {
	cy := d.tr.StartCycle("window")
	defer cy.End()
	// Refresh matrix and watchdog data if remote.
	if d.opts.ControllerURL != "" {
		if m, v, err := control.FetchMatrix(d.client, d.opts.ControllerURL); err == nil {
			d.SetMatrix(m, v)
		}
	}
	cfg := d.opts.PLL
	if d.opts.WatchdogURL != "" {
		if unhealthy, err := watchdog.FetchUnhealthy(d.client, d.opts.WatchdogURL); err == nil {
			cfg.Unhealthy = unhealthy
		}
	}

	histCap := d.opts.HistoryWindows
	if histCap <= 0 {
		histCap = 12
	}
	closeStart := time.Now()
	closeSpan := cy.Span("window_close")
	d.mu.Lock()
	matrix := d.matrix
	version := d.version
	observations := make([]pll.Observation, 0, len(d.acc))
	// sig snapshots the cross-window context as it stood BEFORE this
	// window: flap detection appends the current rate itself, and the RTT
	// baseline must not learn from the window it is judging.
	sig := &pll.Signals{
		History:   make(map[int][]float64, len(d.acc)),
		BaseRTTNS: make(map[int]int64, len(d.acc)),
		Counters:  d.opts.LinkCounters,
	}
	for pathID, c := range d.acc {
		o := pll.Observation{Path: int(pathID), Sent: c.sent, Lost: c.lost}
		if c.acked > 0 {
			o.ECNFrac = c.ecnSum / c.acked
		}
		if c.rttW > 0 {
			o.MeanRTTNS = int64(c.rttSum / c.rttW)
			o.JitterNS = int64(c.jitSum / c.rttW)
		}
		observations = append(observations, o)
		if h := d.hist[pathID]; len(h) > 0 {
			sig.History[o.Path] = append([]float64(nil), h...)
		}
		if base := d.rttBase[pathID]; base > 0 {
			sig.BaseRTTNS[o.Path] = base
		}
		// Roll the history and the min-tracked RTT baseline forward.
		h := append(d.hist[pathID], float64(c.lost)/float64(max(c.sent, 1)))
		if len(h) > histCap {
			h = h[len(h)-histCap:]
		}
		d.hist[pathID] = h
		if o.MeanRTTNS > 0 && (d.rttBase[pathID] == 0 || o.MeanRTTNS < d.rttBase[pathID]) {
			d.rttBase[pathID] = o.MeanRTTNS
		}
		// Feed the long-window accumulator.
		sc := d.slowAcc[pathID]
		if sc == nil {
			sc = &counter{}
			d.slowAcc[pathID] = sc
		}
		sc.sent += c.sent
		sc.lost += c.lost
	}
	d.acc = make(map[uint32]*counter)
	var slowObs []pll.Observation
	if d.opts.SlowEvery > 0 {
		d.slowWindows++
		if d.slowWindows >= d.opts.SlowEvery {
			d.slowWindows = 0
			slowObs = make([]pll.Observation, 0, len(d.slowAcc))
			for pathID, c := range d.slowAcc {
				slowObs = append(slowObs, pll.Observation{Path: int(pathID), Sent: c.sent, Lost: c.lost})
			}
			d.slowAcc = make(map[uint32]*counter)
		}
	}
	d.mu.Unlock()
	closeSpan.End()
	stageWindowClose.Observe(time.Since(closeStart))

	if matrix == nil {
		return nil
	}
	alert := d.localizeAlert(cy, matrix, version, observations, cfg, false, sig)
	if slowObs != nil {
		// The slow pass is the low-rate loss net; it pools too many windows
		// for the time-series signals to mean anything.
		d.localizeAlert(cy, matrix, version, slowObs, cfg, true, nil)
	}
	return alert
}

// shardPlane returns the diagnosis plane for matrix, rebuilding it when
// the served matrix changes (one partition per construction cycle). The
// plane is derived from the matrix alone, over all configured shard
// slots rather than the coordinator's live set: the diagnoser is a
// separate service that only sees the controller's HTTP surface, and
// since it executes every slot's localizer locally, a dead controller
// shard costs nothing here — construction failover is the coordinator's
// job (Coordinator.BuildPlane is the liveness-aware variant for
// in-process embedders).
func (d *Diagnoser) shardPlane(matrix *route.Probes) *shard.Plane {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.plane == nil || d.planeFor != matrix {
		alive := make([]int, d.shards)
		for i := range alive {
			alive[i] = i
		}
		d.plane = shard.NewPlane(matrix, alive).UseClients(d.clients)
		d.planeFor = matrix
		// A new matrix means a new construction cycle — a natural moment
		// to re-run codec negotiation, picking up shards redeployed at a
		// different version since the last cycle.
		d.negotiateCodecs()
	}
	return d.plane
}

// localizeAlert runs one PLL pass — routed across the shard plane when
// configured — and records the alert. The fast pass (sig non-nil) places
// every localized link in the verdict lattice: congestion and delay
// verdicts become Soft advisories instead of Bad alerts, and the
// signal-localization pass adds soft links whose faults lose nothing.
func (d *Diagnoser) localizeAlert(cy *obs.Cycle, matrix *route.Probes, version int, observations []pll.Observation, cfg pll.Config, slow bool, sig *pll.Signals) *Alert {
	if len(observations) == 0 {
		return nil
	}
	var res *pll.Result
	var err error
	// The plane runs whenever localization is sharded OR remote: a single
	// remote shard still gets its windows over the transport.
	if d.shards > 1 || len(d.clients) > 0 {
		res, err = d.shardPlane(matrix).LocalizeCycle(cy, observations, cfg)
	} else {
		sp := cy.Span("localize")
		res, err = pll.Localize(matrix, observations, cfg)
		sp.EndErr(err)
	}
	if err != nil {
		return nil
	}
	alert := Alert{
		Time: time.Now(), Version: version,
		LossyPaths: res.LossyPaths, Unexplained: res.UnexplainedPaths,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		Slow:      slow,
	}
	name := func(lv *LinkVerdict) {
		if d.opts.Topo != nil {
			l := d.opts.Topo.Link(lv.Link)
			lv.A = d.opts.Topo.Node(l.A).Name
			lv.B = d.opts.Topo.Node(l.B).Name
		}
	}
	classifyStart := time.Now()
	classifySpan := cy.Span("classify")
	reported := make(map[topo.LinkID]bool, len(res.Bad))
	for _, v := range res.Bad {
		lv := LinkVerdict{
			Link: v.Link, Rate: v.Rate,
			Class: pll.Classify(matrix, observations, v.Link).String(),
		}
		verdict := pll.ClassifyVerdict(matrix, observations, v.Link, sig, d.opts.Signals)
		lv.Verdict = verdict.String()
		name(&lv)
		reported[v.Link] = true
		if verdict == pll.VerdictCongested || verdict == pll.VerdictDelayed {
			alert.Soft = append(alert.Soft, lv)
		} else {
			alert.Bad = append(alert.Bad, lv)
		}
	}
	if sig != nil {
		sres := pll.LocalizeSignals(matrix, observations, sig, d.opts.Signals, cfg)
		for _, sv := range append(sres.Congested, sres.Delayed...) {
			if reported[sv.Link] {
				continue
			}
			lv := LinkVerdict{Link: sv.Link, Rate: sv.Level, Verdict: sv.Class.String()}
			name(&lv)
			alert.Soft = append(alert.Soft, lv)
		}
	}
	classifySpan.End()
	stageClassify.Observe(time.Since(classifyStart))
	d.mu.Lock()
	d.alerts = append(d.alerts, alert)
	d.mu.Unlock()
	return &alert
}

// Alerts returns all alerts so far.
func (d *Diagnoser) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}
