// Package diag implements deTector's diagnoser (paper §3.1, §6.1): it
// collects pinger reports over HTTP, windows them, asks the watchdog for
// unhealthy servers, fetches the route-level probe matrix from the
// controller, runs PLL once per window and publishes alerts.
package diag

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// LinkVerdict is one suspected link in an alert.
type LinkVerdict struct {
	Link topo.LinkID `json:"link"`
	// A and B name the endpoints for the operator.
	A    string  `json:"a,omitempty"`
	B    string  `json:"b,omitempty"`
	Rate float64 `json:"rate"`
	// Class is the inferred loss kind (full / deterministic-partial /
	// random-partial / unknown), the paper's §7 diagnosis-scoping idea.
	Class string `json:"class,omitempty"`
}

// Alert is the outcome of one localization window.
type Alert struct {
	Time        time.Time     `json:"time"`
	Version     int           `json:"version"`
	Bad         []LinkVerdict `json:"bad"`
	LossyPaths  int           `json:"lossy_paths"`
	Unexplained int           `json:"unexplained"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	// Slow marks alerts from the long-window pass, which accumulates
	// several fast windows to expose losses of extremely low rate that a
	// single window misses (paper §6.4's false-negative remedy).
	Slow bool `json:"slow,omitempty"`
}

// Options configures the diagnoser.
type Options struct {
	// Window is the localization period (paper: 30 s; tests: milliseconds).
	Window time.Duration
	// ControllerURL serves /matrix; WatchdogURL serves /health. Either may
	// be empty when the corresponding input is injected directly.
	ControllerURL string
	WatchdogURL   string
	// PLL is the localization configuration.
	PLL pll.Config
	// SlowEvery, when positive, runs a long-window pass every SlowEvery
	// fast windows over their accumulated counters: the extra samples
	// expose low-rate losses a single window cannot confirm (§6.4
	// suggests 10-minute windows against 30-second fast windows, i.e.
	// SlowEvery = 20).
	SlowEvery int
	// HTTPClient overrides the default client.
	HTTPClient *http.Client
	// Topo, when set, lets alerts name link endpoints.
	Topo *topo.Topology
}

// Diagnoser aggregates reports and localizes per window.
type Diagnoser struct {
	opts   Options
	client *http.Client

	mu          sync.Mutex
	matrix      *route.Probes
	version     int
	acc         map[uint32]*counter // pathID -> window counters
	slowAcc     map[uint32]*counter // multi-window accumulation
	slowWindows int                 // fast windows since last slow pass
	alerts      []Alert
	reports     int64
	stopped     bool
	stopChan    chan struct{}
	done        sync.WaitGroup
}

type counter struct{ sent, lost int }

// New creates a diagnoser; call Run to start the window loop, or drive
// windows manually with RunWindow in tests.
func New(opts Options) *Diagnoser {
	if opts.Window <= 0 {
		opts.Window = 30 * time.Second
	}
	if opts.PLL.HitRatio == 0 {
		opts.PLL = pll.DefaultConfig()
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Diagnoser{
		opts: opts, client: client,
		acc:      make(map[uint32]*counter),
		slowAcc:  make(map[uint32]*counter),
		stopChan: make(chan struct{}),
	}
}

// SetMatrix injects the probe matrix directly (in-process alternative to
// the /matrix fetch).
func (d *Diagnoser) SetMatrix(m *route.Probes, version int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.matrix = m
	d.version = version
}

// Ingest merges one pinger report (handler and tests share it).
func (d *Diagnoser) Ingest(rep *pinger.Report) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reports++
	for _, r := range rep.Results {
		c := d.acc[r.PathID]
		if c == nil {
			c = &counter{}
			d.acc[r.PathID] = c
		}
		c.sent += r.Sent
		c.lost += r.Lost
	}
}

// Reports returns how many reports arrived (monitoring/testing).
func (d *Diagnoser) Reports() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reports
}

// Handler serves POST /report and GET /alerts.
func (d *Diagnoser) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var rep pinger.Report
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		d.Ingest(&rep)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(d.Alerts()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Run drives the window loop until Stop.
func (d *Diagnoser) Run() {
	d.done.Add(1)
	go func() {
		defer d.done.Done()
		tick := time.NewTicker(d.opts.Window)
		defer tick.Stop()
		for {
			select {
			case <-d.stopChan:
				return
			case <-tick.C:
				d.RunWindow()
			}
		}
	}()
}

// Stop halts the window loop.
func (d *Diagnoser) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()
	close(d.stopChan)
	d.done.Wait()
}

// RunWindow executes one localization pass over the accumulated reports.
func (d *Diagnoser) RunWindow() *Alert {
	// Refresh matrix and watchdog data if remote.
	if d.opts.ControllerURL != "" {
		if m, v, err := control.FetchMatrix(d.client, d.opts.ControllerURL); err == nil {
			d.SetMatrix(m, v)
		}
	}
	cfg := d.opts.PLL
	if d.opts.WatchdogURL != "" {
		if unhealthy, err := watchdog.FetchUnhealthy(d.client, d.opts.WatchdogURL); err == nil {
			cfg.Unhealthy = unhealthy
		}
	}

	d.mu.Lock()
	matrix := d.matrix
	version := d.version
	obs := make([]pll.Observation, 0, len(d.acc))
	for pathID, c := range d.acc {
		obs = append(obs, pll.Observation{Path: int(pathID), Sent: c.sent, Lost: c.lost})
		// Feed the long-window accumulator.
		sc := d.slowAcc[pathID]
		if sc == nil {
			sc = &counter{}
			d.slowAcc[pathID] = sc
		}
		sc.sent += c.sent
		sc.lost += c.lost
	}
	d.acc = make(map[uint32]*counter)
	var slowObs []pll.Observation
	if d.opts.SlowEvery > 0 {
		d.slowWindows++
		if d.slowWindows >= d.opts.SlowEvery {
			d.slowWindows = 0
			slowObs = make([]pll.Observation, 0, len(d.slowAcc))
			for pathID, c := range d.slowAcc {
				slowObs = append(slowObs, pll.Observation{Path: int(pathID), Sent: c.sent, Lost: c.lost})
			}
			d.slowAcc = make(map[uint32]*counter)
		}
	}
	d.mu.Unlock()

	if matrix == nil {
		return nil
	}
	alert := d.localizeAlert(matrix, version, obs, cfg, false)
	if slowObs != nil {
		d.localizeAlert(matrix, version, slowObs, cfg, true)
	}
	return alert
}

// localizeAlert runs one PLL pass and records the alert.
func (d *Diagnoser) localizeAlert(matrix *route.Probes, version int, obs []pll.Observation, cfg pll.Config, slow bool) *Alert {
	if len(obs) == 0 {
		return nil
	}
	res, err := pll.Localize(matrix, obs, cfg)
	if err != nil {
		return nil
	}
	alert := Alert{
		Time: time.Now(), Version: version,
		LossyPaths: res.LossyPaths, Unexplained: res.UnexplainedPaths,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		Slow:      slow,
	}
	for _, v := range res.Bad {
		lv := LinkVerdict{
			Link: v.Link, Rate: v.Rate,
			Class: pll.Classify(matrix, obs, v.Link).String(),
		}
		if d.opts.Topo != nil {
			l := d.opts.Topo.Link(v.Link)
			lv.A = d.opts.Topo.Node(l.A).Name
			lv.B = d.opts.Topo.Node(l.B).Name
		}
		alert.Bad = append(alert.Bad, lv)
	}
	d.mu.Lock()
	d.alerts = append(d.alerts, alert)
	d.mu.Unlock()
	return &alert
}

// Alerts returns all alerts so far.
func (d *Diagnoser) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}
