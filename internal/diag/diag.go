// Package diag implements deTector's diagnoser (paper §3.1, §6.1): it
// collects pinger reports over HTTP, windows them, asks the watchdog for
// unhealthy servers, fetches the route-level probe matrix from the
// controller, runs PLL once per window and publishes alerts.
package diag

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/httpx"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
	"github.com/detector-net/detector/internal/watchdog"
)

// malformedReports counts report payloads the diagnoser rejected —
// undecodable JSON or counters that cannot be real (negative, or more
// losses than probes). Rejections answer 400 with a JSON error instead of
// silently dropping data, and this counter makes a sick agent visible.
var malformedReports = metrics.NewCounter("diag_malformed_reports")

// cutLinkDisagreements accumulates the per-window reconciliation slack of
// the approximate partition policy: for every cut link reported bad, the
// number of owning shards that did NOT also report it. Zero under Exact
// (no cut links exist); a growing rate under Approximate quantifies how
// often the cut-link accuracy bound is actually being leaned on.
var cutLinkDisagreements = metrics.NewCounter("diag_cut_link_disagreements")

// Diagnoser stage histograms: the window pipeline's per-cycle timing
// (report ingest, window close-out, verdict classification; the localize
// stage is observed by the shard plane it runs on).
var (
	stageIngest      = obs.Stages.With("ingest")
	stageWindowClose = obs.Stages.With("window_close")
	stageClassify    = obs.Stages.With("classify")
)

// LinkVerdict is one suspected link in an alert.
type LinkVerdict struct {
	Link topo.LinkID `json:"link"`
	// A and B name the endpoints for the operator.
	A    string  `json:"a,omitempty"`
	B    string  `json:"b,omitempty"`
	Rate float64 `json:"rate"`
	// Class is the inferred loss kind (full / deterministic-partial /
	// random-partial / unknown), the paper's §7 diagnosis-scoping idea.
	Class string `json:"class,omitempty"`
	// Verdict places the link in the multi-signal lattice (lossy /
	// silent-partial / congested / delayed / flapping): Class says how the
	// link loses, Verdict says whether it is dying or merely busy.
	Verdict string `json:"verdict,omitempty"`
}

// Alert is the outcome of one localization window.
type Alert struct {
	Time        time.Time     `json:"time"`
	Version     int           `json:"version"`
	Bad         []LinkVerdict `json:"bad"`
	LossyPaths  int           `json:"lossy_paths"`
	Unexplained int           `json:"unexplained"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	// Slow marks alerts from the long-window pass, which accumulates
	// several fast windows to expose losses of extremely low rate that a
	// single window misses (paper §6.4's false-negative remedy).
	Slow bool `json:"slow,omitempty"`
	// Soft lists congested and delayed links: advisories, not link-down
	// alerts. A localized link whose lattice verdict is congestion or
	// delay lands here instead of Bad, so transient queue pressure never
	// pages as a dead link; the signal-localization pass adds links whose
	// faults lose nothing at all.
	Soft []LinkVerdict `json:"soft,omitempty"`
}

// Options configures the diagnoser.
type Options struct {
	// Window is the localization period (paper: 30 s; tests: milliseconds).
	Window time.Duration
	// ControllerURL serves /matrix; WatchdogURL serves /health. Either may
	// be empty when the corresponding input is injected directly.
	ControllerURL string
	WatchdogURL   string
	// PLL is the localization configuration.
	PLL pll.Config
	// SlowEvery, when positive, runs a long-window pass every SlowEvery
	// fast windows over their accumulated counters: the extra samples
	// expose low-rate losses a single window cannot confirm (§6.4
	// suggests 10-minute windows against 30-second fast windows, i.e.
	// SlowEvery = 20).
	SlowEvery int
	// Shards, when > 1, runs each localization pass on the sharded
	// diagnosis plane: observations route to per-shard PLL localizers by
	// path owner (connected component of the probe matrix) and the
	// verdicts merge — bit-identical to one global pll.Localize.
	Shards int
	// ShardEndpoints lists remote shard service URLs (internal/shardrpc).
	// When set, each shard's localization pass dispatches over the
	// transport instead of running locally (falling back to local
	// execution — same algorithm, same verdicts — when a service fails
	// mid-window); Shards is implied (= len(ShardEndpoints)).
	ShardEndpoints []string
	// ShardWire selects the transport codec for ShardEndpoints clients
	// (shardrpc.WireAuto/WireJSON/WireBinary; default auto-negotiate).
	ShardWire string
	// ShardCompression selects localize-path compression for ShardEndpoints
	// clients (shardrpc.CompressAuto/CompressOff/CompressGzip; default
	// auto-negotiate).
	ShardCompression string
	// Partition selects how the diagnosis plane derives path ownership:
	// shard.PartitionExact (default — connected components over every link,
	// bit-identical merge) or shard.PartitionApprox (components over
	// interior links only, so server-edge links no longer entangle racks
	// into one giant component; cut-link verdicts reconcile at merge time
	// and diag_cut_link_disagreements counts the reconciliation slack).
	Partition shard.PartitionPolicy
	// HTTPClient overrides the default client.
	HTTPClient *http.Client
	// Topo, when set, lets alerts name link endpoints.
	Topo *topo.Topology
	// Signals tunes the multi-signal verdict lattice; zero fields take
	// pll.DefaultSignalConfig.
	Signals pll.SignalConfig
	// LinkCounters, when set, exposes per-window switch drop-counter
	// deltas (the SNMP side channel) so the lattice can split observed
	// loss into counted (lossy) and silent (gray).
	LinkCounters pll.LinkCounters
	// HistoryWindows bounds the per-path loss-rate history kept for flap
	// detection (default 12 windows). It also bounds accumulator slots: a
	// path silent for more than this many windows is pruned entirely.
	HistoryWindows int
	// MaxBodyBytes caps a single report body — JSON or binary — answered
	// with 413 past the cap (default shardrpc.DefaultLimits().MaxBodyBytes).
	// It is also the per-frame payload budget on the stream endpoint.
	MaxBodyBytes int64
	// MaxAlerts bounds the retained alert log (default 1024); older alerts
	// fall off the front. The diagnoser runs for months — an unbounded
	// append is a slow leak.
	MaxAlerts int
	// DisableIncremental forces the full PLL recompute every window even on
	// the unsharded path. The incremental engine is bit-identical (pinned
	// by TestIncrementalMatchesFull); this switch exists for that pin and
	// for emergencies.
	DisableIncremental bool
}

// Diagnoser aggregates reports and localizes per window.
type Diagnoser struct {
	opts    Options
	client  *http.Client
	shards  int // effective shard count (Shards or len(ShardEndpoints))
	clients map[int]shard.ShardClient
	tr      *obs.Tracer

	// accum is the striped report accumulator: ingest paths touch only
	// their stripe, never d.mu, so report frames from many streams merge
	// concurrently. reports counts payloads atomically for the same reason.
	accum   *accumulator
	reports atomic.Int64
	maxBody int64

	mu           sync.Mutex
	matrix       *route.Probes
	version      int
	planeCache   shard.PlaneCache // lazily built per matrix signature when opts.Shards > 1
	inc          *pll.Incremental // standing PLL engine (unsharded path)
	incFor       *route.Probes
	accVersion   int  // matrix version the accumulator's slots belong to
	accVersionOK bool // accVersion has been adopted (first window seen)
	slowWindows  int  // fast windows since last slow pass
	alerts       []Alert
	stopped      bool
	stopChan     chan struct{}
	done         sync.WaitGroup
}

// New creates a diagnoser; call Run to start the window loop, or drive
// windows manually with RunWindow in tests.
func New(opts Options) *Diagnoser {
	if opts.Window <= 0 {
		opts.Window = 30 * time.Second
	}
	if opts.PLL.HitRatio == 0 {
		opts.PLL = pll.DefaultConfig()
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = shardrpc.DefaultLimits().MaxBodyBytes
	}
	d := &Diagnoser{
		opts: opts, client: client,
		shards:   opts.Shards,
		tr:       obs.NewTracer("diag", 16),
		accum:    newAccumulator(),
		maxBody:  maxBody,
		stopChan: make(chan struct{}),
	}
	if len(opts.ShardEndpoints) > 0 {
		d.shards = len(opts.ShardEndpoints)
		d.clients = make(map[int]shard.ShardClient, d.shards)
		for i, ep := range opts.ShardEndpoints {
			d.clients[i] = shardrpc.Dial(i, ep, shardrpc.ClientOptions{
				Wire: opts.ShardWire, Compress: opts.ShardCompression})
		}
		d.negotiateCodecs()
	}
	return d
}

// negotiateCodecs pings every shard client in the background. The
// diagnoser runs no heartbeat prober (liveness is the controller
// coordinator's job), but codec negotiation also happens at ping time —
// without this, an auto-wire diagnoser would ship every localize window
// as JSON forever. Best-effort: a failed ping just leaves that client on
// the JSON fallback, and the plane's local-execution fallback covers a
// shard that is really down.
func (d *Diagnoser) negotiateCodecs() {
	for _, cl := range d.clients {
		go func(cl shard.ShardClient) { _ = cl.Ping() }(cl)
	}
}

// SetMatrix injects the probe matrix directly (in-process alternative to
// the /matrix fetch).
func (d *Diagnoser) SetMatrix(m *route.Probes, version int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.matrix = m
	d.version = version
}

// MatrixVersion reports the controller cycle version of the matrix the
// diagnoser currently localizes against.
func (d *Diagnoser) MatrixVersion() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// Tracer exposes the diagnoser's window tracer (the /statusz source).
func (d *Diagnoser) Tracer() *obs.Tracer { return d.tr }

// Ingest merges one pinger report (handler and tests share it).
func (d *Diagnoser) Ingest(rep *pinger.Report) {
	start := time.Now()
	d.reports.Add(1)
	for _, r := range rep.Results {
		d.accum.merge(r.PathID, r.Sent, r.Lost, r.MeanRTTNS, r.JitterNS, r.ECNFrac)
	}
	stageIngest.Observe(time.Since(start))
}

// ingestWire merges one decoded binary report frame, with no conversion to
// the JSON struct: the stream path decodes into a reused shardrpc.Report
// and merges straight into the stripes.
func (d *Diagnoser) ingestWire(rep *shardrpc.Report) {
	start := time.Now()
	d.reports.Add(1)
	for _, r := range rep.Results {
		d.accum.merge(r.PathID, r.Sent, r.Lost, r.MeanRTTNS, r.JitterNS, r.ECNFrac)
	}
	stageIngest.Observe(time.Since(start))
}

// ingestSummary merges one pre-aggregated summary frame: worst paths carry
// full signals, residue paths bare counters. The loss accounting is
// complete either way — that is the summary contract (see shardrpc) — so
// localization over summaries matches per-report ingest exactly.
func (d *Diagnoser) ingestSummary(s *shardrpc.SummaryReport) {
	start := time.Now()
	d.reports.Add(1)
	for _, r := range s.Worst {
		d.accum.merge(r.PathID, r.Sent, r.Lost, r.MeanRTTNS, r.JitterNS, r.ECNFrac)
	}
	for _, r := range s.Residue {
		d.accum.merge(r.PathID, r.Sent, r.Lost, 0, 0, 0)
	}
	stageIngest.Observe(time.Since(start))
}

// Reports returns how many report payloads arrived (monitoring/testing).
func (d *Diagnoser) Reports() int64 { return d.reports.Load() }

// validateResult rejects counters and signals that cannot describe a real
// window: negative counters, more losses than probes, negative latencies,
// non-finite or out-of-range ECN fractions.
func validateResult(i int, pathID uint32, sent, lost int, rttNS, jitNS int64, ecn float64) error {
	if sent < 0 || lost < 0 {
		return fmt.Errorf("result %d (path %d): negative counters sent=%d lost=%d",
			i, pathID, sent, lost)
	}
	if lost > sent {
		return fmt.Errorf("result %d (path %d): lost %d exceeds sent %d",
			i, pathID, lost, sent)
	}
	if rttNS < 0 || jitNS < 0 {
		return fmt.Errorf("result %d (path %d): negative latency mean_rtt_ns=%d jitter_ns=%d",
			i, pathID, rttNS, jitNS)
	}
	if math.IsNaN(ecn) || math.IsInf(ecn, 0) || ecn < 0 || ecn > 1 {
		return fmt.Errorf("result %d (path %d): ECN fraction %v outside [0,1]",
			i, pathID, ecn)
	}
	return nil
}

func validateReport(rep *pinger.Report) error {
	for i, pr := range rep.Results {
		if err := validateResult(i, pr.PathID, pr.Sent, pr.Lost, pr.MeanRTTNS, pr.JitterNS, pr.ECNFrac); err != nil {
			return err
		}
	}
	return nil
}

func validateWire(rep *shardrpc.Report) error {
	for i, pr := range rep.Results {
		if err := validateResult(i, pr.PathID, pr.Sent, pr.Lost, pr.MeanRTTNS, pr.JitterNS, pr.ECNFrac); err != nil {
			return err
		}
	}
	return nil
}

func validateSummary(s *shardrpc.SummaryReport) error {
	if s.Windows < 1 {
		return fmt.Errorf("summary batches %d windows", s.Windows)
	}
	for i, pr := range s.Worst {
		if err := validateResult(i, pr.PathID, pr.Sent, pr.Lost, pr.MeanRTTNS, pr.JitterNS, pr.ECNFrac); err != nil {
			return fmt.Errorf("worst: %w", err)
		}
	}
	for i, rc := range s.Residue {
		if err := validateResult(i, rc.PathID, rc.Sent, rc.Lost, 0, 0, 0); err != nil {
			return fmt.Errorf("residue: %w", err)
		}
	}
	return nil
}

// Handler serves the report plane: POST /report (one JSON or binary body
// per window), POST /reportstream (a persistent connection of back-to-back
// binary frames), GET /reportcaps (capability negotiation) and GET /alerts.
// Malformed reports answer 400 with a JSON error body and bump
// diag_malformed_reports — a silent drop would leave a sick pinger
// indistinguishable from a healthy quiet one; oversized bodies answer 413.
func (d *Diagnoser) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			malformedReports.Inc()
			return
		}
		if ct := r.Header.Get("Content-Type"); ct == shardrpc.ContentTypeBinary {
			// A v2 report or summary frame, same codec as the shard plane.
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.maxBody))
			if err != nil {
				malformedReports.Inc()
				httpx.Error(w, http.StatusRequestEntityTooLarge, "report body too large: %v", err)
				return
			}
			if err := d.ingestFrame(body); err != nil {
				malformedReports.Inc()
				httpx.Error(w, http.StatusBadRequest, "%v", err)
				return
			}
		} else {
			var rep pinger.Report
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, d.maxBody)).Decode(&rep); err != nil {
				malformedReports.Inc()
				var tooBig *http.MaxBytesError
				if errors.As(err, &tooBig) {
					httpx.Error(w, http.StatusRequestEntityTooLarge, "report body too large: %v", err)
					return
				}
				httpx.Error(w, http.StatusBadRequest, "undecodable report: %v", err)
				return
			}
			if err := validateReport(&rep); err != nil {
				malformedReports.Inc()
				httpx.Error(w, http.StatusBadRequest, "invalid report: %v", err)
				return
			}
			d.Ingest(&rep)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/reportstream", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodPost) {
			malformedReports.Inc()
			return
		}
		frames, err := d.serveStream(r.Body)
		if err != nil {
			malformedReports.Inc()
			httpx.Error(w, http.StatusBadRequest, "stream died after %d frames: %v", frames, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/reportcaps", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		httpx.WriteJSON(w, shardrpc.ReportCaps{
			Stream: true, Summary: true,
			Codecs:       []string{shardrpc.CodecJSON, shardrpc.CodecBinary},
			MaxBodyBytes: d.maxBody,
		})
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		if !httpx.RequireMethod(w, r, http.MethodGet) {
			return
		}
		httpx.WriteJSON(w, d.Alerts())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.MetricsHandler()(w, r)
	})
	mux.HandleFunc("/healthz", obs.HealthzHandler(func() obs.Health {
		h := obs.Health{Status: "ok", Service: "diag"}
		d.mu.Lock()
		if d.matrix == nil {
			h.Status = "degraded"
			h.Detail = "no probe matrix yet"
		}
		d.mu.Unlock()
		return h
	}))
	mux.HandleFunc("/statusz", obs.StatuszHandler("diag", d.tr, func() any {
		d.mu.Lock()
		defer d.mu.Unlock()
		return map[string]any{
			"version": d.version,
			"reports": d.reports.Load(),
			"alerts":  len(d.alerts),
			"paths":   d.accum.paths(),
			"shards":  d.shards,
		}
	}))
	return mux
}

// ingestFrame validates and merges one binary frame (report or summary),
// dispatching on the kind byte. Used by the one-shot POST path; the stream
// path keeps reused decode structs across frames instead.
func (d *Diagnoser) ingestFrame(frame []byte) error {
	kind, err := shardrpc.FrameKind(frame)
	if err != nil {
		return fmt.Errorf("undecodable report: %w", err)
	}
	switch kind {
	case shardrpc.KindReport:
		var rep shardrpc.Report
		if err := rep.DecodeBinary(frame, d.maxBody); err != nil {
			return fmt.Errorf("undecodable report: %w", err)
		}
		if err := validateWire(&rep); err != nil {
			return fmt.Errorf("invalid report: %w", err)
		}
		d.ingestWire(&rep)
	case shardrpc.KindReportSummary:
		var sum shardrpc.SummaryReport
		if err := sum.DecodeBinary(frame, d.maxBody); err != nil {
			return fmt.Errorf("undecodable summary: %w", err)
		}
		if err := validateSummary(&sum); err != nil {
			return fmt.Errorf("invalid summary: %w", err)
		}
		d.ingestSummary(&sum)
	default:
		return fmt.Errorf("unsupported report frame kind %d", kind)
	}
	return nil
}

// serveStream drains one persistent report connection: back-to-back
// self-delimiting frames, decoded into reused structs and merged into the
// stripes with no per-frame allocation once warm. It returns the number of
// frames ingested; a nil error is a clean end of stream. The first
// malformed frame kills the connection — framing errors are not locally
// recoverable on a byte stream.
func (d *Diagnoser) serveStream(body io.Reader) (int, error) {
	br := bufio.NewReaderSize(body, 64<<10)
	var buf []byte
	var rep shardrpc.Report
	var sum shardrpc.SummaryReport
	frames := 0
	for {
		frame, reuse, kind, err := shardrpc.ReadFrame(br, d.maxBody, buf)
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, fmt.Errorf("frame %d: %w", frames, err)
		}
		buf = reuse
		switch kind {
		case shardrpc.KindReport:
			if err := rep.DecodeBinary(frame, d.maxBody); err != nil {
				return frames, fmt.Errorf("frame %d: %w", frames, err)
			}
			if err := validateWire(&rep); err != nil {
				return frames, fmt.Errorf("frame %d: %w", frames, err)
			}
			d.ingestWire(&rep)
		case shardrpc.KindReportSummary:
			if err := sum.DecodeBinary(frame, d.maxBody); err != nil {
				return frames, fmt.Errorf("frame %d: %w", frames, err)
			}
			if err := validateSummary(&sum); err != nil {
				return frames, fmt.Errorf("frame %d: %w", frames, err)
			}
			d.ingestSummary(&sum)
		default:
			return frames, fmt.Errorf("frame %d: unsupported kind %d", frames, kind)
		}
		frames++
	}
}

// Run drives the window loop until Stop.
func (d *Diagnoser) Run() {
	d.done.Add(1)
	go func() {
		defer d.done.Done()
		tick := time.NewTicker(d.opts.Window)
		defer tick.Stop()
		for {
			select {
			case <-d.stopChan:
				return
			case <-tick.C:
				d.RunWindow()
			}
		}
	}()
}

// Stop halts the window loop.
func (d *Diagnoser) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.mu.Unlock()
	close(d.stopChan)
	d.done.Wait()
	for _, cl := range d.clients {
		cl.Close()
	}
}

// RunWindow executes one localization pass over the accumulated reports.
func (d *Diagnoser) RunWindow() *Alert {
	cy := d.tr.StartCycle("window")
	defer cy.End()
	// Refresh matrix and watchdog data if remote.
	if d.opts.ControllerURL != "" {
		if m, v, err := control.FetchMatrix(d.client, d.opts.ControllerURL); err == nil {
			d.SetMatrix(m, v)
		}
	}
	cfg := d.opts.PLL
	if d.opts.WatchdogURL != "" {
		if unhealthy, err := watchdog.FetchUnhealthy(d.client, d.opts.WatchdogURL); err == nil {
			cfg.Unhealthy = unhealthy
		}
	}

	histCap := d.opts.HistoryWindows
	if histCap <= 0 {
		histCap = 12
	}
	closeStart := time.Now()
	closeSpan := cy.Span("window_close")
	d.mu.Lock()
	matrix := d.matrix
	version := d.version
	if d.accVersionOK && version != d.accVersion {
		// Matrix version changed: path IDs index a different probe matrix,
		// so every standing slot (history, baseline, slow counters, and any
		// counters merged across the transition) is stale. Prune it all and
		// start the new construction cycle clean.
		d.accum.reset()
		d.inc, d.incFor = nil, nil
	}
	d.accVersion, d.accVersionOK = version, true
	// The incremental engine runs the unsharded path only; the sharded
	// plane keeps the full per-window recompute (its observations are
	// partitioned per shard, a different execution shape).
	var inc *pll.Incremental
	if matrix != nil && d.shards <= 1 && len(d.clients) == 0 && !d.opts.DisableIncremental {
		if d.inc == nil || d.incFor != matrix {
			d.inc = pll.NewIncremental(matrix, cfg)
			d.incFor = matrix
		}
		inc = d.inc
	} else {
		d.inc, d.incFor = nil, nil
	}
	slowDue := false
	if d.opts.SlowEvery > 0 {
		d.slowWindows++
		if d.slowWindows >= d.opts.SlowEvery {
			d.slowWindows = 0
			slowDue = true
		}
	}
	d.mu.Unlock()

	// Walk the stripes: snapshot touched slots into observations, roll the
	// cross-window state forward in place, zero the window section, and
	// keep the incremental engine in lockstep (silent paths leave it, so a
	// pass sees exactly this window's observation multiset). Slots idle
	// past the history horizon are deleted — the accumulator is bounded by
	// the live path population.
	observations := make([]pll.Observation, 0, 1024)
	var slowObs []pll.Observation
	// sig snapshots the cross-window context as it stood BEFORE this
	// window: flap detection appends the current rate itself, and the RTT
	// baseline must not learn from the window it is judging.
	sig := &pll.Signals{
		History:   make(map[int][]float64),
		BaseRTTNS: make(map[int]int64),
		Counters:  d.opts.LinkCounters,
	}
	for i := range d.accum.stripes {
		s := &d.accum.stripes[i]
		s.mu.Lock()
		for pathID, c := range s.slots {
			if c.touched {
				c.idle = 0
				// Wire path IDs are sparse and stable across churn; the
				// localizer works in matrix rows, so translate here (the
				// identity for dense matrices). An ID the matrix does not
				// carry — a path retired by churn, or a stale pinger — is
				// dropped exactly as an out-of-range ID was before.
				o := pll.Observation{Path: int(pathID), Sent: c.sent, Lost: c.lost}
				inMatrix := matrix == nil
				if matrix != nil {
					if row, ok := matrix.RowOf(pathID); ok {
						o.Path = row
						inMatrix = true
					}
				}
				if c.acked > 0 {
					o.ECNFrac = c.ecnSum / c.acked
				}
				if c.rttW > 0 {
					o.MeanRTTNS = int64(c.rttSum / c.rttW)
					o.JitterNS = int64(c.jitSum / c.rttW)
				}
				if inMatrix {
					observations = append(observations, o)
					if inc != nil {
						inc.Update(o)
						c.engineHas = true
					}
				}
				if inMatrix && len(c.hist) > 0 {
					sig.History[o.Path] = append([]float64(nil), c.hist...)
				}
				if inMatrix && c.rttBase > 0 {
					sig.BaseRTTNS[o.Path] = c.rttBase
				}
				// Roll the history and the min-tracked RTT baseline forward.
				c.hist = append(c.hist, float64(c.lost)/float64(max(c.sent, 1)))
				if len(c.hist) > histCap {
					copy(c.hist, c.hist[len(c.hist)-histCap:])
					c.hist = c.hist[:histCap]
				}
				if o.MeanRTTNS > 0 && (c.rttBase == 0 || o.MeanRTTNS < c.rttBase) {
					c.rttBase = o.MeanRTTNS
				}
				// Feed the long-window accumulator and zero the window
				// section. With the slow pass disabled the counters would
				// bank forever and pin idle slots past pruning, so only an
				// enabled pass accumulates.
				if d.opts.SlowEvery > 0 {
					c.slowSent += c.sent
					c.slowLost += c.lost
				}
				c.sent, c.lost = 0, 0
				c.acked, c.rttW, c.rttSum, c.jitSum, c.ecnSum = 0, 0, 0, 0, 0
				c.touched = false
			} else {
				if inc != nil && c.engineHas {
					if row, ok := matrix.RowOf(pathID); ok {
						inc.Remove(row)
					}
				}
				c.engineHas = false
				c.idle++
			}
			if slowDue && c.slowSent > 0 {
				row, ok := int(pathID), matrix == nil
				if matrix != nil {
					row, ok = matrix.RowOf(pathID)
				}
				if ok {
					slowObs = append(slowObs, pll.Observation{
						Path: row, Sent: c.slowSent, Lost: c.slowLost})
				}
				c.slowSent, c.slowLost = 0, 0
			}
			// Prune slots idle past the history horizon, but never one still
			// carrying counters for a pending slow pass.
			if c.idle > histCap && c.slowSent == 0 {
				delete(s.slots, pathID)
			}
		}
		s.mu.Unlock()
	}
	closeSpan.End()
	stageWindowClose.Observe(time.Since(closeStart))

	if matrix == nil {
		return nil
	}
	alert := d.localizeAlert(cy, matrix, version, observations, cfg, false, sig, inc)
	if slowDue && len(slowObs) > 0 {
		// The slow pass is the low-rate loss net; it pools too many windows
		// for the time-series signals to mean anything, and it always runs
		// the full recompute (its multiset is not the engine's window).
		d.localizeAlert(cy, matrix, version, slowObs, cfg, true, nil, nil)
	}
	return alert
}

// shardPlane returns the diagnosis plane for matrix, rebuilding it when
// the served matrix changes (one partition per construction cycle). The
// cache keys on the matrix's content signature, not pointer identity —
// the /matrix fetch allocates a fresh Probes every window, so an
// unchanged served matrix must not rebuild the owner and local maps
// every 30 seconds. The plane is derived from the matrix alone, over all
// configured shard slots rather than the coordinator's live set: the
// diagnoser is a separate service that only sees the controller's HTTP
// surface, and since it executes every slot's localizer locally, a dead
// controller shard costs nothing here — construction failover is the
// coordinator's job (Coordinator.BuildPlane is the liveness-aware
// variant for in-process embedders).
func (d *Diagnoser) shardPlane(matrix *route.Probes) *shard.Plane {
	alive := make([]int, d.shards)
	for i := range alive {
		alive[i] = i
	}
	pl, rebuilt := d.planeCache.Get(matrix, alive, d.opts.Partition)
	if rebuilt {
		// A new matrix means a new construction cycle — a natural moment
		// to re-run codec negotiation, picking up shards redeployed at a
		// different version since the last cycle.
		d.negotiateCodecs()
	}
	return pl.UseClients(d.clients)
}

// localizeAlert runs one PLL pass — routed across the shard plane when
// configured — and records the alert. The fast pass (sig non-nil) places
// every localized link in the verdict lattice: congestion and delay
// verdicts become Soft advisories instead of Bad alerts, and the
// signal-localization pass adds soft links whose faults lose nothing.
func (d *Diagnoser) localizeAlert(cy *obs.Cycle, matrix *route.Probes, version int, observations []pll.Observation, cfg pll.Config, slow bool, sig *pll.Signals, inc *pll.Incremental) *Alert {
	if len(observations) == 0 {
		return nil
	}
	var res *pll.Result
	var err error
	// The plane runs whenever localization is sharded OR remote: a single
	// remote shard still gets its windows over the transport. The standing
	// incremental engine (already fed by the window close) covers the
	// unsharded fast pass; pll.Incremental pins it bit-identical to the
	// full recompute.
	if inc != nil {
		sp := cy.Span("localize")
		res, err = inc.Pass(cfg)
		sp.EndErr(err)
	} else if d.shards > 1 || len(d.clients) > 0 {
		var ms shard.MergeStats
		res, ms, err = d.shardPlane(matrix).LocalizeCycleStats(cy, observations, cfg)
		cutLinkDisagreements.Add(int64(ms.Disagreements))
	} else {
		sp := cy.Span("localize")
		res, err = pll.Localize(matrix, observations, cfg)
		sp.EndErr(err)
	}
	if err != nil {
		return nil
	}
	alert := Alert{
		Time: time.Now(), Version: version,
		LossyPaths: res.LossyPaths, Unexplained: res.UnexplainedPaths,
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
		Slow:      slow,
	}
	name := func(lv *LinkVerdict) {
		if d.opts.Topo != nil {
			l := d.opts.Topo.Link(lv.Link)
			lv.A = d.opts.Topo.Node(l.A).Name
			lv.B = d.opts.Topo.Node(l.B).Name
		}
	}
	classifyStart := time.Now()
	classifySpan := cy.Span("classify")
	reported := make(map[topo.LinkID]bool, len(res.Bad))
	for _, v := range res.Bad {
		lv := LinkVerdict{
			Link: v.Link, Rate: v.Rate,
			Class: pll.Classify(matrix, observations, v.Link).String(),
		}
		verdict := pll.ClassifyVerdict(matrix, observations, v.Link, sig, d.opts.Signals)
		lv.Verdict = verdict.String()
		name(&lv)
		reported[v.Link] = true
		if verdict == pll.VerdictCongested || verdict == pll.VerdictDelayed {
			alert.Soft = append(alert.Soft, lv)
		} else {
			alert.Bad = append(alert.Bad, lv)
		}
	}
	if sig != nil {
		sres := pll.LocalizeSignals(matrix, observations, sig, d.opts.Signals, cfg)
		for _, sv := range append(sres.Congested, sres.Delayed...) {
			if reported[sv.Link] {
				continue
			}
			lv := LinkVerdict{Link: sv.Link, Rate: sv.Level, Verdict: sv.Class.String()}
			name(&lv)
			alert.Soft = append(alert.Soft, lv)
		}
	}
	classifySpan.End()
	stageClassify.Observe(time.Since(classifyStart))
	maxAlerts := d.opts.MaxAlerts
	if maxAlerts <= 0 {
		maxAlerts = 1024
	}
	d.mu.Lock()
	d.alerts = append(d.alerts, alert)
	if len(d.alerts) > maxAlerts {
		// Ring semantics in place: shift down and reslice, so the backing
		// array never grows past maxAlerts+1.
		n := copy(d.alerts, d.alerts[len(d.alerts)-maxAlerts:])
		d.alerts = d.alerts[:n]
	}
	d.mu.Unlock()
	return &alert
}

// Alerts returns all alerts so far.
func (d *Diagnoser) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}
