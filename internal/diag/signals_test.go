package diag

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
)

// TestReportHandlerRejectsMalformedSignals sweeps the new field checks:
// negative latencies and out-of-range ECN fractions answer 400 and bump
// diag_malformed_reports, on both wires (NaN can only arrive via binary —
// JSON cannot spell it).
func TestReportHandlerRejectsMalformedSignals(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	before := metrics.Counters()["diag_malformed_reports"]

	postJSON := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/report", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	bad := []string{
		`{"node":1,"results":[{"path_id":0,"sent":10,"lost":0,"mean_rtt_ns":-5}]}`,
		`{"node":1,"results":[{"path_id":0,"sent":10,"lost":0,"jitter_ns":-1}]}`,
		`{"node":1,"results":[{"path_id":0,"sent":10,"lost":0,"ecn_frac":1.5}]}`,
		`{"node":1,"results":[{"path_id":0,"sent":10,"lost":0,"ecn_frac":-0.1}]}`,
	}
	for _, b := range bad {
		if code := postJSON(b); code != http.StatusBadRequest {
			t.Fatalf("payload %s: status %d, want 400", b, code)
		}
	}

	// A NaN ECN fraction travels bit-faithfully over the binary wire and
	// must die at validation, not at decode.
	nan := shardrpc.Report{Node: 1, Results: []shardrpc.ReportResult{
		{PathID: 0, Sent: 10, Lost: 0, ECNFrac: math.NaN()},
	}}
	resp, err := http.Post(srv.URL+"/report", shardrpc.ContentTypeBinary, bytes.NewReader(nan.EncodeBinary()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN ECN over binary: status %d, want 400", resp.StatusCode)
	}

	if got := metrics.Counters()["diag_malformed_reports"]; got != before+5 {
		t.Fatalf("diag_malformed_reports = %d, want %d (+5)", got, before+5)
	}
	if d.Reports() != 0 {
		t.Fatalf("malformed reports were ingested: %d", d.Reports())
	}

	// Healthy signals pass on both wires.
	if code := postJSON(`{"node":1,"results":[{"path_id":0,"sent":10,"lost":1,"mean_rtt_ns":50000,"jitter_ns":2000,"ecn_frac":0.25}]}`); code != http.StatusNoContent {
		t.Fatalf("valid JSON signal report: status %d, want 204", code)
	}
	ok := shardrpc.Report{Node: 2, Results: []shardrpc.ReportResult{
		{PathID: 1, Sent: 10, Lost: 0, MeanRTTNS: 50000, JitterNS: 1000, ECNFrac: 0.5},
	}}
	resp, err = http.Post(srv.URL+"/report", shardrpc.ContentTypeBinary, bytes.NewReader(ok.EncodeBinary()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid binary report: status %d, want 204", resp.StatusCode)
	}
	if d.Reports() != 2 {
		t.Fatalf("valid reports ingested: %d, want 2", d.Reports())
	}
}

// TestBinaryReportCarriesSignals drives the full binary path: a pinger
// report encoded as a v2 frame arrives with ECN marks, and the window's
// verdict lattice turns the marked, slightly lossy link into a Soft
// congestion advisory instead of a Bad link-down alert.
func TestBinaryReportCarriesSignals(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	rep := shardrpc.Report{Node: 9, Version: 1, Results: []shardrpc.ReportResult{
		{PathID: 0, Sent: 100, Lost: 5, MeanRTTNS: 400000, JitterNS: 60000, ECNFrac: 0.4},
		{PathID: 1, Sent: 100, Lost: 4, MeanRTTNS: 380000, JitterNS: 50000, ECNFrac: 0.35},
		{PathID: 2, Sent: 100, Lost: 0, MeanRTTNS: 100000, JitterNS: 1000, ECNFrac: 0},
	}}
	resp, err := http.Post(srv.URL+"/report", shardrpc.ContentTypeBinary, bytes.NewReader(rep.EncodeBinary()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("binary report: status %d, want 204", resp.StatusCode)
	}
	alert := d.RunWindow()
	if alert == nil {
		t.Fatal("no alert")
	}
	if len(alert.Bad) != 0 {
		t.Fatalf("congested link raised a hard alert: %+v", alert.Bad)
	}
	found := false
	for _, lv := range alert.Soft {
		if lv.Link == 0 && lv.Verdict == pll.VerdictCongested.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("soft congestion advisory for link 0 missing: %+v", alert.Soft)
	}
}

// TestDelayedFaultSoftLocalized: a pure latency fault loses nothing, so
// the loss pipeline is blind to it; the delay pass must localize it from
// the RTT-inflation signal against the learned baseline.
func TestDelayedFaultSoftLocalized(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	healthy := func() {
		d.Ingest(&pinger.Report{Node: 9, Results: []pinger.PathReport{
			{PathID: 0, Sent: 100, Lost: 0, MeanRTTNS: 100000},
			{PathID: 1, Sent: 100, Lost: 0, MeanRTTNS: 100000},
			{PathID: 2, Sent: 100, Lost: 0, MeanRTTNS: 100000},
		}})
	}
	healthy()
	if alert := d.RunWindow(); alert != nil && len(alert.Bad)+len(alert.Soft) != 0 {
		t.Fatalf("healthy warmup raised alerts: %+v", alert)
	}
	// Paths 0 and 1 (both through link 0) inflate 4x; path 2 stays flat.
	d.Ingest(&pinger.Report{Node: 9, Results: []pinger.PathReport{
		{PathID: 0, Sent: 100, Lost: 0, MeanRTTNS: 400000},
		{PathID: 1, Sent: 100, Lost: 0, MeanRTTNS: 400000},
		{PathID: 2, Sent: 100, Lost: 0, MeanRTTNS: 100000},
	}})
	alert := d.RunWindow()
	if alert == nil {
		t.Fatal("no alert")
	}
	if len(alert.Bad) != 0 {
		t.Fatalf("delay fault raised a hard alert: %+v", alert.Bad)
	}
	if len(alert.Soft) != 1 || alert.Soft[0].Link != 0 || alert.Soft[0].Verdict != pll.VerdictDelayed.String() {
		t.Fatalf("delay fault not soft-localized to link 0: %+v", alert.Soft)
	}
}

// TestFlappingVerdict: a link alternating dead/clean across windows must
// classify as flapping once the loss-rate series shows the oscillation.
func TestFlappingVerdict(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	feed := func(lost int) {
		d.Ingest(&pinger.Report{Node: 9, Results: []pinger.PathReport{
			{PathID: 0, Sent: 100, Lost: lost},
			{PathID: 1, Sent: 100, Lost: lost},
			{PathID: 2, Sent: 100, Lost: 0},
		}})
	}
	var alert *Alert
	for _, lost := range []int{100, 0, 100, 0, 100} { // down, up, down, up, down
		feed(lost)
		alert = d.RunWindow()
	}
	if alert == nil || len(alert.Bad) != 1 || alert.Bad[0].Link != 0 {
		t.Fatalf("final down window: %+v", alert)
	}
	if alert.Bad[0].Verdict != pll.VerdictFlapping.String() {
		t.Fatalf("verdict %q, want flapping", alert.Bad[0].Verdict)
	}
}

// TestSilentPartialVerdict: identical loss observations split on the
// switch-counter side channel — counted drops are lossy, uncounted gray.
func TestSilentPartialVerdict(t *testing.T) {
	run := func(counters pll.LinkCounters) *Alert {
		d := New(Options{Window: time.Hour, LinkCounters: counters})
		d.SetMatrix(testMatrix(), 1)
		d.Ingest(&pinger.Report{Node: 9, Results: []pinger.PathReport{
			{PathID: 0, Sent: 100, Lost: 30},
			{PathID: 1, Sent: 100, Lost: 35},
			{PathID: 2, Sent: 100, Lost: 0},
		}})
		return d.RunWindow()
	}
	silent := run(func(topo.LinkID) (int64, bool) { return 0, true })
	if silent == nil || len(silent.Bad) != 1 || silent.Bad[0].Verdict != pll.VerdictSilentPartial.String() {
		t.Fatalf("uncounted loss: %+v, want silent-partial", silent)
	}
	counted := run(func(topo.LinkID) (int64, bool) { return 60, true })
	if counted == nil || len(counted.Bad) != 1 || counted.Bad[0].Verdict != pll.VerdictLossy.String() {
		t.Fatalf("counted loss: %+v, want lossy", counted)
	}
	// The loss-only Class is lattice-independent and must not move.
	if silent.Bad[0].Class != counted.Bad[0].Class {
		t.Fatalf("loss class diverged: %q vs %q", silent.Bad[0].Class, counted.Bad[0].Class)
	}
}

// TestAlertJSONCarriesVerdicts pins the alert wire: Soft and Verdict
// fields survive the JSON round trip operators consume.
func TestAlertJSONCarriesVerdicts(t *testing.T) {
	a := Alert{Bad: []LinkVerdict{{Link: 1, Verdict: "lossy"}},
		Soft: []LinkVerdict{{Link: 2, Verdict: "congested", Rate: 0.3}}}
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Alert
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Soft) != 1 || back.Soft[0].Verdict != "congested" || back.Bad[0].Verdict != "lossy" {
		t.Fatalf("alert JSON round trip: %+v", back)
	}
}
