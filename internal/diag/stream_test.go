package diag

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pinger"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/topo"
)

var malformedCounter = metrics.NewCounter("diag_malformed_reports")

// TestReportCaps pins the negotiation surface: the diagnoser advertises
// stream and summary ingest, both codecs, and its body budget.
func TestReportCaps(t *testing.T) {
	d := New(Options{Window: time.Hour, MaxBodyBytes: 1 << 20})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/reportcaps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var caps shardrpc.ReportCaps
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	if !caps.Stream || !caps.Summary || caps.MaxBodyBytes != 1<<20 {
		t.Fatalf("caps: %+v", caps)
	}
	var binary bool
	for _, c := range caps.Codecs {
		binary = binary || c == shardrpc.CodecBinary
	}
	if !binary {
		t.Fatalf("binary codec not advertised: %v", caps.Codecs)
	}
}

// TestJSONBodyCap pins the 413 path: a JSON report past MaxBodyBytes is
// refused before it can balloon the decoder, and the rejection is counted.
func TestJSONBodyCap(t *testing.T) {
	d := New(Options{Window: time.Hour, MaxBodyBytes: 128})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	rep := pinger.Report{Node: 1, Version: 1}
	for i := 0; i < 100; i++ {
		rep.Results = append(rep.Results, pinger.PathReport{PathID: uint32(i), Sent: 10})
	}
	body, _ := json.Marshal(rep)
	before := malformedCounter.Value()
	resp, err := srv.Client().Post(srv.URL+"/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON answered %s, want 413", resp.Status)
	}
	if malformedCounter.Value() != before+1 {
		t.Fatal("oversized body not counted as malformed")
	}
	if d.Reports() != 0 {
		t.Fatalf("oversized body was ingested: %d reports", d.Reports())
	}

	// A small body still lands.
	small, _ := json.Marshal(pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 0, Sent: 5}}})
	resp, err = srv.Client().Post(srv.URL+"/report", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || d.Reports() != 1 {
		t.Fatalf("small body: %s, reports=%d", resp.Status, d.Reports())
	}
}

// TestStreamIngest drives the persistent connection end to end: mixed
// kind-5 and kind-6 frames over one POST body, then a window that matches
// the equivalent JSON ingest exactly.
func TestStreamIngest(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	pr, pw := io.Pipe()
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/reportstream", shardrpc.ContentTypeBinary, pr)
		respCh <- resp
		errCh <- err
	}()

	rep := shardrpc.Report{Node: 1, Version: 1, Results: []shardrpc.ReportResult{
		{PathID: 0, Sent: 100, Lost: 90},
		{PathID: 1, Sent: 100, Lost: 95},
	}}
	sum := shardrpc.SummaryReport{Node: 2, Version: 1, Windows: 1, TopK: 1,
		Worst:   []shardrpc.ReportResult{{PathID: 1, Sent: 50, Lost: 45}},
		Residue: []shardrpc.ResidueCounter{{PathID: 2, Sent: 100, Lost: 0}},
	}
	if _, err := pw.Write(rep.EncodeBinary()); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(sum.EncodeBinary()); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stream answered %s", resp.Status)
	}
	if d.Reports() != 2 {
		t.Fatalf("reports = %d, want 2 frames", d.Reports())
	}

	alert := d.RunWindow()
	if alert == nil || len(alert.Bad) != 1 || alert.Bad[0].Link != 0 {
		t.Fatalf("streamed window: %+v", alert)
	}
	if alert.LossyPaths != 2 {
		t.Fatalf("lossy paths = %d, want 2", alert.LossyPaths)
	}
}

// TestStreamMalformed: a corrupt frame kills the connection with a 400 and
// counts as malformed; frames before it still land.
func TestStreamMalformed(t *testing.T) {
	d := New(Options{Window: time.Hour})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	rep := shardrpc.Report{Node: 1, Results: []shardrpc.ReportResult{{PathID: 0, Sent: 10}}}
	var stream bytes.Buffer
	stream.Write(rep.EncodeBinary())
	stream.WriteString("this is not a frame")

	before := malformedCounter.Value()
	resp, err := http.Post(srv.URL+"/reportstream", shardrpc.ContentTypeBinary, &stream)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt stream answered %s", resp.Status)
	}
	if malformedCounter.Value() != before+1 {
		t.Fatal("corrupt stream not counted")
	}
	if d.Reports() != 1 {
		t.Fatalf("reports = %d, want the 1 good frame", d.Reports())
	}

	// An unknown frame kind on /report is a 400, not a crash.
	frame := rep.EncodeBinary()
	frame[3] = 9
	resp, err = http.Post(srv.URL+"/report", shardrpc.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind answered %s", resp.Status)
	}
}

// TestAlertsRing pins the alert-log bound: only the newest MaxAlerts
// survive, oldest first out.
func TestAlertsRing(t *testing.T) {
	d := New(Options{Window: time.Hour, MaxAlerts: 3})
	d.SetMatrix(testMatrix(), 1)
	for w := 0; w < 5; w++ {
		d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{
			{PathID: 0, Sent: 100, Lost: 50 + w}, // w varies so windows are distinguishable
			{PathID: 1, Sent: 100, Lost: 50 + w},
			{PathID: 2, Sent: 100, Lost: 0},
		}})
		if d.RunWindow() == nil {
			t.Fatalf("window %d: no alert", w)
		}
	}
	alerts := d.Alerts()
	if len(alerts) != 3 {
		t.Fatalf("ring kept %d alerts, want 3", len(alerts))
	}
	// The survivors are the newest three (windows 2, 3, 4): loss rates rise
	// monotonically with w, so the rates pin the order.
	for i, a := range alerts {
		wantRate := float64(52+i) / 100
		if len(a.Bad) != 1 || a.Bad[0].Rate != wantRate {
			t.Fatalf("ring slot %d: %+v, want rate %v", i, a.Bad, wantRate)
		}
	}
}

// TestSlotPruning: a path that stops reporting is deleted once it has been
// idle past the history horizon, so vanished paths cannot grow the
// accumulator forever.
func TestSlotPruning(t *testing.T) {
	d := New(Options{Window: time.Hour, HistoryWindows: 3})
	d.SetMatrix(testMatrix(), 1)
	d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 0, Sent: 10, Lost: 0}}})
	d.RunWindow()
	if got := d.accum.paths(); got != 1 {
		t.Fatalf("slots = %d, want 1", got)
	}
	for w := 0; w < 4; w++ {
		d.RunWindow()
	}
	if got := d.accum.paths(); got != 0 {
		t.Fatalf("idle slot survived pruning: %d", got)
	}
}

// TestMatrixVersionPrune: a matrix version change drops every standing slot
// — histories and baselines keyed by old path IDs must not leak into the
// new construction cycle.
func TestMatrixVersionPrune(t *testing.T) {
	d := New(Options{Window: time.Hour})
	d.SetMatrix(testMatrix(), 1)
	d.Ingest(&pinger.Report{Node: 1, Results: []pinger.PathReport{{PathID: 0, Sent: 10, Lost: 5}}})
	d.RunWindow()
	if d.accum.paths() == 0 {
		t.Fatal("no slots after first window")
	}
	d.SetMatrix(testMatrix(), 2)
	d.RunWindow()
	if got := d.accum.paths(); got != 0 {
		t.Fatalf("stale slots survived the version change: %d", got)
	}
}

// --- bit-identity pins -----------------------------------------------------

// strippedAlerts canonicalizes alerts for comparison: wall-clock fields
// (Time, ElapsedMS) are zeroed, everything else — links, rates, classes,
// verdicts, counts — must match bit for bit.
func strippedAlerts(alerts []Alert) []Alert {
	out := make([]Alert, len(alerts))
	for i, a := range alerts {
		a.Time = time.Time{}
		a.ElapsedMS = 0
		out[i] = a
	}
	return out
}

// alertsHash is the fnv64a of the canonical JSON of the stripped alerts.
func alertsHash(t *testing.T, alerts []Alert) uint64 {
	t.Helper()
	b, err := json.Marshal(strippedAlerts(alerts))
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// servedMatrix builds the pmc-selected probe matrix for a topology — the
// production shape, not a hand fixture.
func servedMatrix(t *testing.T, ps route.PathSet, numLinks int) *route.Probes {
	t.Helper()
	res, err := pmc.Construct(ps, numLinks, pmc.Options{
		Alpha: 1, Beta: 1, Decompose: true, Lazy: true, Symmetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return route.NewProbes(ps, res.Selected, numLinks)
}

// fleetWindow synthesizes one window of per-node reports over the matrix:
// every path reports sent=200, paths crossing a bad link lose 60%, and
// paths are sharded over nodes round-robin. silentNodes drop their reports
// entirely (path churn for the incremental engine).
func fleetWindow(m *route.Probes, nodes int, badLinks map[topo.LinkID]bool, silentNodes map[int]bool) []pinger.Report {
	reps := make([]pinger.Report, nodes)
	for n := range reps {
		reps[n] = pinger.Report{Node: topo.NodeID(n + 1), Version: 1}
	}
	for path := 0; path < m.NumPaths(); path++ {
		n := path % nodes
		if silentNodes[n] {
			continue
		}
		lost := 0
		for _, l := range m.PathLinks[path] {
			if badLinks[l] {
				lost = 120
				break
			}
		}
		reps[n].Results = append(reps[n].Results, pinger.PathReport{
			PathID: uint32(path), Sent: 200, Lost: lost})
	}
	out := reps[:0]
	for _, r := range reps {
		if len(r.Results) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// windowScript returns per-window fault/churn settings: the bad-link set
// moves and some nodes go silent, exercising incremental update/remove and
// reclassification.
func windowScript(m *route.Probes, nodes int) []struct {
	bad    map[topo.LinkID]bool
	silent map[int]bool
} {
	l0 := m.PathLinks[0][len(m.PathLinks[0])/2]
	l1 := m.PathLinks[m.NumPaths()/2][0]
	return []struct {
		bad    map[topo.LinkID]bool
		silent map[int]bool
	}{
		{bad: map[topo.LinkID]bool{l0: true}},
		{bad: map[topo.LinkID]bool{l0: true, l1: true}, silent: map[int]bool{1: true, 5: true}},
		{bad: map[topo.LinkID]bool{l1: true}},
		{bad: map[topo.LinkID]bool{}, silent: map[int]bool{0: true}},
		{bad: map[topo.LinkID]bool{l0: true, l1: true}},
	}
}

// TestIncrementalMatchesFull pins the tentpole invariant on served
// matrices: a diagnoser running the standing incremental engine produces
// bit-identical alerts to one forced onto the full per-window recompute,
// across windows with fault churn and vanishing pingers, on Fattree(8) and
// BCube(4,1).
func TestIncrementalMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("served-matrix differential is not -short")
	}
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	cases := []struct {
		name     string
		ps       route.PathSet
		numLinks int
	}{
		{"Fattree8", route.NewFattreePaths(f8), f8.NumLinks()},
		{"BCube41", route.NewBCubePaths(b41), b41.NumLinks()},
	}
	const nodes = 48
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := servedMatrix(t, c.ps, c.numLinks)
			dInc := New(Options{Window: time.Hour})
			dFull := New(Options{Window: time.Hour, DisableIncremental: true})
			dInc.SetMatrix(m, 1)
			dFull.SetMatrix(m, 1)

			for w, sc := range windowScript(m, nodes) {
				for _, rep := range fleetWindow(m, nodes, sc.bad, sc.silent) {
					rep := rep
					dInc.Ingest(&rep)
					dFull.Ingest(&rep)
				}
				aInc := dInc.RunWindow()
				aFull := dFull.RunWindow()
				if (aInc == nil) != (aFull == nil) {
					t.Fatalf("window %d: inc=%v full=%v", w, aInc, aFull)
				}
			}
			hInc := alertsHash(t, dInc.Alerts())
			hFull := alertsHash(t, dFull.Alerts())
			if hInc != hFull {
				t.Fatalf("incremental alerts diverge from full recompute:\n inc  %x %+v\n full %x %+v",
					hInc, strippedAlerts(dInc.Alerts()), hFull, strippedAlerts(dFull.Alerts()))
			}
			if len(dInc.Alerts()) == 0 {
				t.Fatal("script produced no alerts — the pin is vacuous")
			}
		})
	}
}

// sendFleet delivers one window's reports to a diagnoser over a mix of
// transports: nodes are split round-robin between JSON POSTs, kind-5
// binary POSTs, and summary frames over a persistent stream.
func sendFleet(t *testing.T, url string, reps []pinger.Report) {
	t.Helper()
	pr, pw := io.Pipe()
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/reportstream", shardrpc.ContentTypeBinary, pr)
		respCh <- resp
		errCh <- err
	}()
	for i, rep := range reps {
		switch i % 3 {
		case 0: // legacy JSON POST
			body, _ := json.Marshal(rep)
			postOK(t, url+"/report", "application/json", body)
		case 1: // per-report binary frame POST
			wr := shardrpc.Report{Node: rep.Node, Version: rep.Version, EndNS: rep.EndNS,
				Results: make([]shardrpc.ReportResult, len(rep.Results))}
			for j, r := range rep.Results {
				wr.Results[j] = shardrpc.ReportResult{PathID: r.PathID, Sent: r.Sent, Lost: r.Lost,
					MeanRTTNS: r.MeanRTTNS, JitterNS: r.JitterNS, ECNFrac: r.ECNFrac}
			}
			postOK(t, url+"/report", shardrpc.ContentTypeBinary, wr.EncodeBinary())
		case 2: // summary frame on the stream: top-2 worst, rest residue
			sum := shardrpc.SummaryReport{Node: rep.Node, Version: rep.Version,
				EndNS: rep.EndNS, Windows: 1, TopK: 2}
			worst1, worst2 := -1, -1
			for j, r := range rep.Results {
				if worst1 < 0 || r.Lost > rep.Results[worst1].Lost {
					worst1, worst2 = j, worst1
				} else if worst2 < 0 || r.Lost > rep.Results[worst2].Lost {
					worst2 = j
				}
			}
			for j, r := range rep.Results {
				if j == worst1 || j == worst2 {
					sum.Worst = append(sum.Worst, shardrpc.ReportResult{
						PathID: r.PathID, Sent: r.Sent, Lost: r.Lost,
						MeanRTTNS: r.MeanRTTNS, JitterNS: r.JitterNS, ECNFrac: r.ECNFrac})
				} else {
					sum.Residue = append(sum.Residue, shardrpc.ResidueCounter{
						PathID: r.PathID, Sent: r.Sent, Lost: r.Lost})
				}
			}
			if _, err := pw.Write(sum.EncodeBinary()); err != nil {
				t.Fatal(err)
			}
		}
	}
	pw.Close()
	resp, err := <-respCh, <-errCh
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stream answered %s", resp.Status)
	}
}

func postOK(t *testing.T, url, contentType string, body []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
}

// TestMixedFleetIngest is the acceptance pin: a fleet split between JSON
// POSTs, per-report binary frames, and streamed summary frames produces
// alerts hash-identical to an all-JSON fleet into a full-recompute
// diagnoser, on served Fattree(8) and BCube(4,1) matrices. Summary frames
// keep every path's counters (worst + residue), so loss localization is
// exactly the JSON outcome regardless of transport.
func TestMixedFleetIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("served-matrix fleet test is not -short")
	}
	f8 := topo.MustFattree(8)
	b41 := topo.MustBCube(4, 1)
	cases := []struct {
		name     string
		ps       route.PathSet
		numLinks int
	}{
		{"Fattree8", route.NewFattreePaths(f8), f8.NumLinks()},
		{"BCube41", route.NewBCubePaths(b41), b41.NumLinks()},
	}
	const nodes = 48
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := servedMatrix(t, c.ps, c.numLinks)

			dMixed := New(Options{Window: time.Hour})
			dMixed.SetMatrix(m, 1)
			srv := httptest.NewServer(dMixed.Handler())
			defer srv.Close()

			dRef := New(Options{Window: time.Hour, DisableIncremental: true})
			dRef.SetMatrix(m, 1)

			for _, sc := range windowScript(m, nodes) {
				reps := fleetWindow(m, nodes, sc.bad, sc.silent)
				sendFleet(t, srv.URL, reps)
				for _, rep := range reps {
					rep := rep
					dRef.Ingest(&rep)
				}
				dMixed.RunWindow()
				dRef.RunWindow()
			}

			hMixed := alertsHash(t, dMixed.Alerts())
			hRef := alertsHash(t, dRef.Alerts())
			if hMixed != hRef {
				t.Fatalf("mixed-fleet alerts diverge from all-JSON full recompute:\n mixed %x %+v\n ref   %x %+v",
					hMixed, strippedAlerts(dMixed.Alerts()), hRef, strippedAlerts(dRef.Alerts()))
			}
			if len(dMixed.Alerts()) == 0 {
				t.Fatal("fleet produced no alerts — the pin is vacuous")
			}
			t.Logf("%s: %d windows, alert hash %x", c.name, len(dMixed.Alerts()), hMixed)
		})
	}
}

// --- benchmarks --------------------------------------------------------------

// benchFrames pre-encodes a fleet of kind-5 frames (nodes × resultsPerFrame
// paths), the steady-state ingest workload.
func benchFrames(nodes, resultsPerFrame int) [][]byte {
	frames := make([][]byte, nodes)
	for n := range frames {
		rep := shardrpc.Report{Node: topo.NodeID(n + 1), Version: 1, EndNS: int64(n)}
		base := n * resultsPerFrame
		for i := 0; i < resultsPerFrame; i++ {
			rep.Results = append(rep.Results, shardrpc.ReportResult{
				PathID: uint32(base + i), Sent: 200, Lost: i % 3,
				MeanRTTNS: 1_000_000 + int64(i), JitterNS: 1000, ECNFrac: 0.25,
			})
		}
		frames[n] = rep.EncodeBinary()
	}
	return frames
}

// BenchmarkIngestThroughput measures the streaming hot path — frame decode
// (reused struct), validation, and striped merge — and reports per-path
// report throughput. The acceptance floor is 1e6 reports/sec.
func BenchmarkIngestThroughput(b *testing.B) {
	const resultsPerFrame = 64
	d := New(Options{Window: time.Hour})
	frames := benchFrames(256, resultsPerFrame)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var rep shardrpc.Report
		i := 0
		for pb.Next() {
			frame := frames[i%len(frames)]
			i++
			if err := rep.DecodeBinary(frame, 0); err != nil {
				b.Fatal(err)
			}
			if err := validateWire(&rep); err != nil {
				b.Fatal(err)
			}
			d.ingestWire(&rep)
		}
	})
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(b.N)*resultsPerFrame/sec, "reports/s")
		b.ReportMetric(float64(b.N)/sec, "frames/s")
	}
}

// BenchmarkWindowClose measures the close-out a fleet-scale window pays:
// walking ~16k populated slots, rolling history, feeding the incremental
// engine and localizing. The acceptance ceiling is one second.
func BenchmarkWindowClose(b *testing.B) {
	f8 := topo.MustFattree(8)
	ps := route.NewFattreePaths(f8)
	res, err := pmc.Construct(ps, f8.NumLinks(), pmc.Options{
		Alpha: 1, Beta: 1, Decompose: true, Lazy: true, Symmetry: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := route.NewProbes(ps, res.Selected, f8.NumLinks())
	d := New(Options{Window: time.Hour})
	d.SetMatrix(m, 1)
	bad := m.PathLinks[0][len(m.PathLinks[0])/2]

	refill := func() {
		for path := 0; path < m.NumPaths(); path++ {
			lost := 0
			for _, l := range m.PathLinks[path] {
				if l == bad {
					lost = 120
					break
				}
			}
			d.accum.merge(uint32(path), 200, lost, 1_000_000, 1000, 0)
		}
	}
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		refill()
		b.StartTimer()
		start := time.Now()
		if alert := d.RunWindow(); alert == nil {
			b.Fatal("no alert")
		}
		total += time.Since(start)
	}
	b.StopTimer()
	if b.N > 0 {
		perWindow := total / time.Duration(b.N)
		b.ReportMetric(perWindow.Seconds()*1000, "ms/window")
		if perWindow > time.Second {
			b.Fatalf("window close %v exceeds the sub-second budget", perWindow)
		}
	}
}
