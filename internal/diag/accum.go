package diag

// The report accumulator, rebuilt for streaming ingest. The original
// diagnoser kept four parallel maps (window counters, slow-window counters,
// loss history, RTT baseline) under the one Diagnoser mutex and reallocated
// the window map every close — at fleet scale that is a fresh allocation
// per path per window and a single lock every report frame fights for.
//
// The accumulator replaces them with one persistent slot per path, sharded
// over lock stripes by path ID. Ingest locks only the slot's stripe; the
// window close walks the stripes one at a time and ZEROES the window
// section of each slot instead of reallocating, so a steady-state fleet
// ingests with no per-report allocation at all. Cross-window state (loss
// history, RTT baseline, slow-window counters) lives in the same slot, and
// slots idle past the history horizon are deleted — the maps are bounded by
// the live path population, not by everything ever reported.

import "sync"

// numStripes is the lock-stripe fan-out (power of two; path IDs of one
// pinger are consecutive, so ID & mask spreads one frame's results evenly).
const numStripes = 64

// pathSlot is one path's standing accumulator state.
type pathSlot struct {
	// Window section: this window's merged counters and delivered-weighted
	// signal sums, zeroed (not reallocated) at window close.
	sent, lost     int
	acked, rttW    float64
	rttSum, jitSum float64
	ecnSum         float64
	// touched marks the slot as having received a report this window.
	touched bool

	// Cross-window section.
	slowSent, slowLost int       // long-window (SlowEvery) accumulation
	hist               []float64 // per-window loss rates, flap detection
	rttBase            int64     // healthy-baseline mean RTT (min-tracked)
	engineHas          bool      // path is present in the incremental engine
	idle               int       // windows since last report, for pruning
}

type stripe struct {
	mu    sync.Mutex
	slots map[uint32]*pathSlot
}

// accumulator is the sharded ingest state. Ingest paths lock one stripe at
// a time; the window close serializes with them stripe by stripe.
type accumulator struct {
	stripes [numStripes]stripe
}

func newAccumulator() *accumulator {
	a := &accumulator{}
	for i := range a.stripes {
		a.stripes[i].slots = make(map[uint32]*pathSlot)
	}
	return a
}

// merge folds one path's window counters (and, when acked > 0 with a
// positive RTT, its delivered-weighted signals) into the path's slot.
// Multiple reports for one path — several pingers probing the same path, or
// several batched sub-windows — accumulate into honest weighted means,
// exactly as the old map-based Ingest did.
func (a *accumulator) merge(pathID uint32, sent, lost int, meanRTTNS, jitterNS int64, ecnFrac float64) {
	s := &a.stripes[pathID&(numStripes-1)]
	s.mu.Lock()
	c := s.slots[pathID]
	if c == nil {
		c = &pathSlot{}
		s.slots[pathID] = c
	}
	c.touched = true
	c.sent += sent
	c.lost += lost
	if del := float64(sent - lost); del > 0 {
		c.acked += del
		c.ecnSum += ecnFrac * del
		if meanRTTNS > 0 {
			c.rttW += del
			c.rttSum += float64(meanRTTNS) * del
			c.jitSum += float64(jitterNS) * del
		}
	}
	s.mu.Unlock()
}

// reset drops every slot — the matrix version changed, so path IDs index a
// different probe matrix and all standing state (histories, baselines, slow
// counters, window counters) is about paths that no longer exist.
func (a *accumulator) reset() {
	for i := range a.stripes {
		s := &a.stripes[i]
		s.mu.Lock()
		s.slots = make(map[uint32]*pathSlot)
		s.mu.Unlock()
	}
}

// paths counts live slots (tests and /statusz).
func (a *accumulator) paths() int {
	n := 0
	for i := range a.stripes {
		s := &a.stripes[i]
		s.mu.Lock()
		n += len(s.slots)
		s.mu.Unlock()
	}
	return n
}
