// Command pmc computes a deTector probe matrix offline: build a topology,
// run the PMC greedy at the requested (α, β), verify the result, and emit
// the selected paths as JSON (or a summary).
//
// Usage:
//
//	pmc -topo fattree -k 8 -alpha 3 -beta 1
//	pmc -topo vl2 -da 20 -di 12 -t 20 -alpha 1 -beta 1 -json matrix.json
//	pmc -topo bcube -n 4 -bk 2 -alpha 1 -beta 1 -no-symmetry
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

// matrixJSON is the exported probe-matrix format.
type matrixJSON struct {
	Topology string      `json:"topology"`
	Alpha    int         `json:"alpha"`
	Beta     int         `json:"beta"`
	NumLinks int         `json:"num_links"`
	Paths    []pathJSON  `json:"paths"`
	Stats    interface{} `json:"stats"`
}

type pathJSON struct {
	Index int           `json:"index"`
	Src   topo.NodeID   `json:"src"`
	Dst   topo.NodeID   `json:"dst"`
	Links []topo.LinkID `json:"links"`
}

func main() {
	var (
		topoKind = flag.String("topo", "fattree", "topology family: fattree | vl2 | bcube")
		k        = flag.Int("k", 8, "fattree radix")
		da       = flag.Int("da", 20, "vl2 aggregation degree")
		di       = flag.Int("di", 12, "vl2 intermediate degree")
		t        = flag.Int("t", 20, "vl2 servers per ToR")
		n        = flag.Int("n", 4, "bcube port count")
		bk       = flag.Int("bk", 2, "bcube levels minus one")
		alpha    = flag.Int("alpha", 3, "coverage target")
		beta     = flag.Int("beta", 1, "identifiability target")
		noDecomp = flag.Bool("no-decompose", false, "disable matrix decomposition")
		noLazy   = flag.Bool("no-lazy", false, "disable lazy (CELF) updates")
		noSym    = flag.Bool("no-symmetry", false, "disable symmetry reduction")
		verify   = flag.Bool("verify", true, "verify coverage/identifiability of the result")
		jsonOut  = flag.String("json", "", "write the matrix as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	var (
		tp    *topo.Topology
		paths route.PathSet
	)
	switch *topoKind {
	case "fattree":
		f, err := topo.NewFattree(*k)
		fatal(err)
		tp, paths = f.Topology, route.NewFattreePaths(f)
	case "vl2":
		v, err := topo.NewVL2(*da, *di, *t)
		fatal(err)
		tp, paths = v.Topology, route.NewVL2Paths(v)
	case "bcube":
		b, err := topo.NewBCube(*n, *bk)
		fatal(err)
		tp, paths = b.Topology, route.NewBCubePaths(b)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topoKind))
	}

	res, err := pmc.Construct(paths, tp.NumLinks(), pmc.Options{
		Alpha: *alpha, Beta: *beta,
		Decompose: !*noDecomp, Lazy: !*noLazy, Symmetry: !*noSym,
	})
	fatal(err)

	st := tp.Stats()
	fmt.Printf("%s: %d nodes, %d links, %d candidate paths\n", tp.Name, st.Nodes, st.Links, paths.Len())
	fmt.Printf("selected %d paths (%.4f%% of candidates) in %v\n",
		len(res.Selected), 100*float64(len(res.Selected))/float64(paths.Len()), res.Stats.Elapsed)
	fmt.Printf("components=%d candidates=%d score-evals=%d coverage-met=%v identifiability-met=%v\n",
		res.Stats.Components, res.Stats.Candidates, res.Stats.ScoreEvals,
		res.Stats.CoverageMet, res.Stats.IdentMet)

	probes := route.NewProbes(paths, res.Selected, tp.NumLinks())
	if *verify {
		links := tp.SwitchLinks()
		if *topoKind == "bcube" {
			links = links[:0]
			for _, l := range tp.Links {
				links = append(links, l.ID)
			}
		}
		v := pmc.Verify(probes, links, *beta >= 2 && len(links) <= 4096)
		fmt.Printf("verified: coverage %d..%d, 1-identifiable=%v", v.MinCoverage, v.MaxCoverage, v.Identifiable1)
		if *beta >= 2 && len(links) <= 4096 {
			fmt.Printf(", 2-identifiable=%v", v.Identifiable2)
		}
		fmt.Println()
		for _, c := range v.Collisions {
			fmt.Printf("  collision: %s\n", c)
		}
	}

	if *jsonOut != "" {
		out := matrixJSON{
			Topology: tp.Name, Alpha: *alpha, Beta: *beta,
			NumLinks: tp.NumLinks(), Stats: res.Stats,
		}
		for i := range probes.PathLinks {
			out.Paths = append(out.Paths, pathJSON{
				Index: res.Selected[i],
				Src:   probes.Src[i], Dst: probes.Dst[i],
				Links: probes.PathLinks[i],
			})
		}
		w := os.Stdout
		if *jsonOut != "-" {
			file, err := os.Create(*jsonOut)
			fatal(err)
			defer file.Close()
			w = file
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(out))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmc:", err)
		os.Exit(1)
	}
}
