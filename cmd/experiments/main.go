// Command experiments regenerates every table and figure of the deTector
// paper's evaluation. Each experiment prints a text table whose rows mirror
// the paper's; EXPERIMENTS.md records the paper-versus-measured comparison.
//
// Usage:
//
//	experiments -run all                 # everything at CI scale
//	experiments -run table2 -big        # paper-adjacent sizes
//	experiments -run table5 -k 48       # the paper's 48-ary instance
//	experiments -run table4,fig5 -trials 50 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/detector-net/detector/internal/expt"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,table5,fig4,fig5,fig6,scenarios,serverlevel or 'all'")
		trials   = flag.Int("trials", 10, "random scenarios per cell")
		seed     = flag.Int64("seed", 1, "RNG seed")
		big      = flag.Bool("big", false, "paper-adjacent instance sizes (minutes of runtime)")
		k        = flag.Int("k", 0, "override Fattree radix for table4/table5/scenarios (0 = experiment default)")
		probes   = flag.Int("probes", 400, "probes per path per simulated window")
		beta     = flag.Int("beta", 0, "override table5's probe-matrix identifiability level (0 = paper default 2)")
		scenario = flag.String("scenario", "", "restrict the scenario suite to one fault mode: lossy, silent-partial, congested, delayed, incast or flapping (empty = all)")
	)
	flag.Parse()

	p := expt.Params{Trials: *trials, Seed: *seed, Big: *big, K: *k, ProbesPerPath: *probes, Beta: *beta, Scenario: *scenario}

	type driver struct {
		name string
		fn   func() error
	}
	drivers := []driver{
		{"table1", func() error { _, err := expt.Table1(os.Stdout, p); return err }},
		{"table2", func() error { _, err := expt.Table2(os.Stdout, p); return err }},
		{"table3", func() error { _, err := expt.Table3(os.Stdout, p); return err }},
		{"table4", func() error { _, err := expt.Table4(os.Stdout, p); return err }},
		{"table5", func() error { _, err := expt.Table5(os.Stdout, p); return err }},
		{"fig4", func() error { _, err := expt.Fig4(os.Stdout, p); return err }},
		{"fig5", func() error { _, err := expt.Fig5(os.Stdout, p); return err }},
		{"fig6", func() error { _, err := expt.Fig6(os.Stdout, p); return err }},
		{"scenarios", func() error { _, err := expt.ScenarioSweep(os.Stdout, p); return err }},
		{"serverlevel", func() error { _, err := expt.ServerLevel(os.Stdout, p); return err }},
	}

	want := map[string]bool{}
	all := *run == "all"
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	known := map[string]bool{}
	for _, d := range drivers {
		known[d.name] = true
	}
	for name := range want {
		if name != "all" && !known[name] {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	ran := 0
	for _, d := range drivers {
		if !all && !want[d.name] {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		if err := d.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", d.name, err)
			os.Exit(1)
		}
		ran++
	}
}
