// Command pll runs deTector's loss localization offline on a JSON file of
// per-path observations against a probe matrix produced by cmd/pmc.
//
// Input format (observations):
//
//	[{"path_id": 0, "sent": 300, "lost": 12}, ...]
//
// Usage:
//
//	pmc -topo fattree -k 4 -alpha 3 -beta 1 -json matrix.json
//	pll -matrix matrix.json -obs window.json
//	pll -matrix matrix.json -obs window.json -algo tomo -hit-ratio 0.8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/topo"
)

type matrixJSON struct {
	Topology string `json:"topology"`
	NumLinks int    `json:"num_links"`
	Paths    []struct {
		Src   topo.NodeID   `json:"src"`
		Dst   topo.NodeID   `json:"dst"`
		Links []topo.LinkID `json:"links"`
	} `json:"paths"`
}

type obsJSON struct {
	PathID int `json:"path_id"`
	Sent   int `json:"sent"`
	Lost   int `json:"lost"`
}

func main() {
	var (
		matrixPath = flag.String("matrix", "", "probe matrix JSON from cmd/pmc (required)")
		obsPath    = flag.String("obs", "", "observation window JSON (required)")
		algo       = flag.String("algo", "pll", "localizer: pll | tomo | score | omp")
		hitRatio   = flag.Float64("hit-ratio", 0.6, "PLL hit-ratio threshold")
		floor      = flag.Float64("floor", 1e-3, "noise floor on path loss ratio")
	)
	flag.Parse()
	if *matrixPath == "" || *obsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var m matrixJSON
	fatal(readJSON(*matrixPath, &m))
	var rawObs []obsJSON
	fatal(readJSON(*obsPath, &rawObs))

	linkSets := make([][]topo.LinkID, len(m.Paths))
	for i, p := range m.Paths {
		linkSets[i] = p.Links
	}
	probes := route.NewProbesFromLinks(linkSets, m.NumLinks)
	for i, p := range m.Paths {
		probes.Src[i], probes.Dst[i] = p.Src, p.Dst
	}
	obs := make([]pll.Observation, len(rawObs))
	for i, o := range rawObs {
		obs[i] = pll.Observation{Path: o.PathID, Sent: o.Sent, Lost: o.Lost}
	}

	var localizer pll.Localizer
	switch *algo {
	case "pll":
		a := pll.NewPLL()
		a.Config.HitRatio = *hitRatio
		a.Config.LossRatioFloor = *floor
		localizer = a
	case "tomo":
		localizer = pll.NewTomo()
	case "score":
		localizer = pll.NewSCORE()
	case "omp":
		localizer = pll.NewOMP()
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	bad, err := localizer.Localize(probes, obs)
	fatal(err)
	fmt.Printf("%s on %q: %d paths observed, %d links suspected\n", localizer.Name(), m.Topology, len(obs), len(bad))
	for _, l := range bad {
		fmt.Printf("  link %d\n", l)
	}
	if *algo == "pll" {
		// Rich output with loss-rate estimates.
		cfg := pll.DefaultConfig()
		cfg.HitRatio = *hitRatio
		cfg.LossRatioFloor = *floor
		res, err := pll.Localize(probes, obs, cfg)
		fatal(err)
		for _, v := range res.Bad {
			fmt.Printf("  link %d: estimated loss rate %.4f (%d losses explained)\n", v.Link, v.Rate, v.Explained)
		}
		if res.UnexplainedPaths > 0 {
			fmt.Printf("  %d lossy paths unexplained\n", res.UnexplainedPaths)
		}
	}
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pll:", err)
		os.Exit(1)
	}
}
