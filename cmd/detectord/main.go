// Command detectord boots the deTector deployment. In front-end mode (the
// default) it runs the emulated UDP switch fabric, controller, diagnoser
// and watchdog services, and pinger/responder agents on every server,
// then injects failures on demand from stdin and prints diagnoser alerts —
// a terminal version of the paper's testbed demo. With -shard-serve the
// same binary is instead one controller shard as a standalone HTTP
// service (internal/shardrpc): a front-end started with -shard-endpoints
// drives a fleet of such processes over the wire, with served output
// bit-identical to the single-process boot.
//
// Usage:
//
//	detectord -k 4 -window 2s                 # everything in one process
//	detectord -k 4 -shards 2 -remote-shards   # shards behind loopback HTTP
//
//	detectord -shard-serve -k 4 -listen 127.0.0.1:7117   # one shard process
//	detectord -shard-serve -k 4 -listen 127.0.0.1:7118   # another
//	detectord -k 4 -shard-endpoints http://127.0.0.1:7117,http://127.0.0.1:7118
//
// Interactive commands on stdin (front-end mode):
//
//	fail <linkID> full|gray|blackhole|rate <p>
//	repair <linkID>
//	links            # list switch links
//	alerts           # dump alerts so far
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/detector-net/detector/internal/cluster"
	"github.com/detector-net/detector/internal/control"
	"github.com/detector-net/detector/internal/obs"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/shard"
	"github.com/detector-net/detector/internal/shardrpc"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// startPprof serves net/http/pprof on its own listener when -pprof is set:
// the profiling surface never rides on a service port by accident.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, obs.PprofMux()); err != nil {
			fmt.Fprintln(os.Stderr, "detectord: pprof listener:", err)
		}
	}()
	fmt.Printf("pprof: http://%s/debug/pprof/\n", addr)
}

// serveShard runs the binary as one controller shard: a shardrpc service
// over its own materialization of the Fattree(k) candidate matrix.
func serveShard(k int, listen string) error {
	f, err := topo.NewFattree(k)
	if err != nil {
		return err
	}
	ps := route.NewFattreePaths(f)
	srv := shardrpc.NewServer(ps, f.NumLinks())
	fmt.Printf("detectord shard: Fattree(%d) engine up on %s — %d candidate paths, matrix sig %#016x\n",
		k, listen, ps.Len(), srv.MatrixSig())
	fmt.Println("endpoints: GET /v1/ping · POST /v1/construct · POST /v1/localize · GET /metrics · GET /healthz · GET /statusz")
	return srv.ListenAndServe(listen)
}

// reportWire maps the -wire flag to the pinger report codec: an explicit
// binary fleet goes binary end to end; auto and json keep JSON reports
// (the report POST has no negotiation handshake to auto against).
func reportWire(wire string) string {
	if wire == shardrpc.WireBinary {
		return shardrpc.CodecBinary
	}
	return ""
}

func main() {
	var (
		k          = flag.Int("k", 4, "Fattree radix")
		window     = flag.Duration("window", 2*time.Second, "diagnoser window")
		rate       = flag.Int("rate", 60, "probes per second per pinger")
		shards     = flag.Int("shards", 1, "controller shards (>1 boots the sharded controller plane)")
		remote     = flag.Bool("remote-shards", false, "run the -shards controller shards as loopback HTTP services instead of in-process")
		endpoints  = flag.String("shard-endpoints", "", "comma-separated shard service URLs; the front-end drives this external fleet")
		shardServe = flag.Bool("shard-serve", false, "run as one controller shard service instead of the front-end")
		listen     = flag.String("listen", "127.0.0.1:7117", "shard service listen address (with -shard-serve)")
		wire       = flag.String("wire", shardrpc.WireAuto, "shard transport codec: auto (negotiate at ping time), json, or binary; 'binary' also switches pinger reports to the v2 frame")
		compress   = flag.String("shard-compress", shardrpc.CompressAuto, "localize-path compression: auto (negotiate at ping time), off, or gzip")
		partition  = flag.String("partition", string(shard.PartitionExact), "diagnosis plane partition policy: exact (bit-identical merge) or approx (cut server-edge links for real server-level sharding)")
		repBatch   = flag.Int("report-batch", 1, "report windows each pinger pre-aggregates locally before shipping one payload")
		repTopK    = flag.Int("report-topk", 0, "ship kind-6 summary frames keeping full signals for the K worst paths (0 = full per-path reports; needs -wire binary)")
		repStream  = flag.Bool("report-stream", false, "ship report frames over one persistent connection per pinger instead of per-window POSTs (needs -wire binary)")
		downLinks  = flag.String("down-links", "", "comma-separated link IDs masked out of service at boot (candidate routes avoid them; bring back with 'churn up')")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (off when empty)")
		verbose    = flag.Bool("v", false, "log at info level instead of warn")
	)
	flag.Parse()
	if *verbose {
		obs.SetLevel(slog.LevelInfo)
	}
	startPprof(*pprofAddr)

	switch *wire {
	case shardrpc.WireAuto, shardrpc.WireJSON, shardrpc.WireBinary:
	default:
		fmt.Fprintf(os.Stderr, "detectord: -wire %q must be auto, json or binary\n", *wire)
		os.Exit(2)
	}
	switch *compress {
	case shardrpc.CompressAuto, shardrpc.CompressOff, shardrpc.CompressGzip:
	default:
		fmt.Fprintf(os.Stderr, "detectord: -shard-compress %q must be auto, off or gzip\n", *compress)
		os.Exit(2)
	}
	if _, err := shard.ParsePartitionPolicy(*partition); err != nil {
		fmt.Fprintf(os.Stderr, "detectord: -partition %q must be exact or approx\n", *partition)
		os.Exit(2)
	}

	if *shardServe {
		if err := serveShard(*k, *listen); err != nil {
			fmt.Fprintln(os.Stderr, "detectord shard:", err)
			os.Exit(1)
		}
		return
	}

	cfg := control.DefaultConfig()
	cfg.RatePPS = *rate
	cfg.WindowMS = int(*window / time.Millisecond)
	var eps []string
	for _, ep := range strings.Split(*endpoints, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			eps = append(eps, ep)
		}
	}
	for _, ds := range strings.Split(*downLinks, ",") {
		if ds = strings.TrimSpace(ds); ds == "" {
			continue
		}
		id, err := strconv.Atoi(ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detectord: -down-links: bad link id %q\n", ds)
			os.Exit(2)
		}
		cfg.DownLinks = append(cfg.DownLinks, topo.LinkID(id))
	}
	c, err := cluster.Start(cluster.Options{
		K:                *k,
		Control:          cfg,
		Window:           *window,
		ProbeTimeout:     400 * time.Millisecond,
		Shards:           *shards,
		RemoteShards:     *remote,
		ShardEndpoints:   eps,
		ShardWire:        *wire,
		ShardCompression: *compress,
		Partition:        *partition,
		ReportWire:       reportWire(*wire),
		ReportBatch:      *repBatch,
		ReportTopK:       *repTopK,
		StreamReports:    *repStream,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "detectord:", err)
		os.Exit(1)
	}
	defer c.Stop()

	fmt.Printf("detectord: Fattree(%d) up — %d switches, %d servers, %d pingers, %d probe routes\n",
		*k, c.F.Stats().Switches, c.F.Stats().Servers, len(c.Pingers), c.Controller.ProbeMatrix().NumPaths())
	if coord := c.Controller.Coordinator(); coord != nil {
		st := coord.Status()
		fmt.Printf("sharded controller plane: %d shards over %d components, %s partition\n",
			coord.NumShards(), coord.Components(), st.Partition)
		for _, si := range st.Shards {
			if si.Codec != "" {
				comp := si.Compression
				if comp == "" {
					comp = shardrpc.CompressionIdentity
				}
				fmt.Printf("  shard %d @ %s (%d components, %s wire, %s localize)\n",
					si.ID, si.Addr, len(si.Components), si.Codec, comp)
				continue
			}
			fmt.Printf("  shard %d @ %s (%d components)\n", si.ID, si.Addr, len(si.Components))
		}
	}
	fmt.Printf("controller %s | diagnoser %s | watchdog %s\n", c.ControllerURL, c.DiagnoserURL, c.WatchdogURL)
	fmt.Println("observability: GET /metrics (Prometheus text; ?format=json for JSON) · GET /healthz · GET /statusz on every service")
	fmt.Println("commands: fail <link> full|gray|blackhole|rate <p> · repair <link> · churn down|up <link>... · links · alerts · quit")

	// Stream alerts as they appear.
	go func() {
		seen := 0
		for {
			time.Sleep(*window / 2)
			alerts := c.Diagnoser.Alerts()
			for ; seen < len(alerts); seen++ {
				a := alerts[seen]
				if len(a.Bad) == 0 && len(a.Soft) == 0 {
					continue
				}
				fmt.Printf("ALERT %s: %d lossy paths\n", a.Time.Format("15:04:05"), a.LossyPaths)
				for _, v := range a.Bad {
					fmt.Printf("  bad link %d (%s <-> %s), est. loss %.2f%%, verdict %s\n", v.Link, v.A, v.B, 100*v.Rate, v.Verdict)
				}
				for _, v := range a.Soft {
					fmt.Printf("  soft link %d (%s <-> %s), %s at %.2f%%\n", v.Link, v.A, v.B, v.Verdict, 100*v.Rate)
				}
			}
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "links":
			for _, l := range c.F.SwitchLinks() {
				lk := c.F.Link(l)
				fmt.Printf("  %d: %s <-> %s\n", l, c.F.Node(lk.A).Name, c.F.Node(lk.B).Name)
			}
		case "alerts":
			for _, a := range c.Diagnoser.Alerts() {
				fmt.Printf("  %s: %d lossy, bad=%v\n", a.Time.Format("15:04:05"), a.LossyPaths, a.Bad)
			}
		case "churn":
			if len(fields) < 3 || (fields[1] != "down" && fields[1] != "up") {
				fmt.Println("usage: churn down|up <linkID>...")
				continue
			}
			var ids []topo.LinkID
			bad := false
			for _, fs := range fields[2:] {
				id, err := strconv.Atoi(fs)
				if err != nil || id < 0 || id >= c.F.NumLinks() {
					fmt.Println("bad link id", fs)
					bad = true
					break
				}
				ids = append(ids, topo.LinkID(id))
			}
			if bad {
				continue
			}
			var down, up []topo.LinkID
			if fields[1] == "down" {
				down = ids
			} else {
				up = ids
			}
			diff, err := c.Churn(down, up)
			if err != nil {
				fmt.Println("churn:", err)
				continue
			}
			fmt.Printf("churn applied: %d paths deactivated, %d activated, %d components recomputed, cycle version %d\n",
				len(diff.DeactivatedRows), len(diff.ActivatedRows),
				len(diff.Removed)+len(diff.Added), c.Controller.Version())
		case "repair":
			if len(fields) < 2 {
				fmt.Println("usage: repair <linkID>")
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("bad link id")
				continue
			}
			c.Repair(topo.LinkID(id))
			fmt.Printf("repaired link %d\n", id)
		case "fail":
			if len(fields) < 3 {
				fmt.Println("usage: fail <linkID> full|gray|blackhole|rate <p>")
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= c.F.NumLinks() {
				fmt.Println("bad link id")
				continue
			}
			var model sim.LossModel
			switch fields[2] {
			case "full":
				model = sim.FullLoss{}
			case "gray":
				model = sim.FullLoss{Gray: true}
			case "blackhole":
				model = sim.DeterministicLoss{Buckets: 0xFFFF0000, Seed: 42}
			case "rate":
				if len(fields) < 4 {
					fmt.Println("usage: fail <linkID> rate <p>")
					continue
				}
				p, err := strconv.ParseFloat(fields[3], 64)
				if err != nil || p <= 0 || p > 1 {
					fmt.Println("bad rate")
					continue
				}
				model = sim.RandomLoss{P: p}
			default:
				fmt.Println("unknown loss model")
				continue
			}
			c.InjectFailure(topo.LinkID(id), model)
			fmt.Printf("injected %s on link %d\n", fields[2], id)
		default:
			fmt.Println("unknown command")
		}
	}
}
