// Package detector is a topology-aware monitoring system for data-center
// networks, reproducing "deTector: a Topology-aware Monitoring System for
// Data Center Networks" (Peng et al., USENIX ATC 2017).
//
// deTector detects and localizes packet loss in near real time from
// end-to-end UDP probes alone. Its two core algorithms are exported here:
//
//   - PMC (probe matrix construction): a greedy selector that picks the
//     minimal set of source-routed probe paths achieving α-coverage (every
//     link probed by at least α paths) and β-identifiability (any ≤ β
//     simultaneous link failures distinguishable from end-to-end loss
//     observations alone), with the paper's three speedups: matrix
//     decomposition, lazy (CELF) score updates and topology-symmetry
//     reduction.
//   - PLL (packet loss localization): a hit-ratio-thresholded greedy that
//     maps one window of per-path loss counters to the smallest set of
//     faulty links, robust to partial packet loss (flow-selective
//     blackholes).
//
// The package also exports the supporting substrates: Fattree/VL2/BCube
// topology builders, candidate path enumeration, a flow-keyed loss
// simulator, the Pingmesh/NetNORAD/SNMP baselines, and the full agent
// stack (controller, pinger, responder, diagnoser, watchdog) that runs
// over an emulated UDP switch fabric.
//
// # Quick start
//
//	f := detector.MustFattree(8)
//	paths := detector.NewFattreePaths(f)
//	res, _ := detector.ConstructProbeMatrix(paths, f.NumLinks(), detector.PMCOptions{
//		Alpha: 3, Beta: 1, Decompose: true, Lazy: true,
//	})
//	probes := detector.NewProbes(paths, res.Selected, f.NumLinks())
//	// ... collect per-path loss observations, then:
//	verdicts, _ := detector.Localize(probes, obs, detector.DefaultPLLConfig())
//
// See examples/ for runnable end-to-end scenarios, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-versus-measured record.
package detector

import (
	"github.com/detector-net/detector/internal/cluster"
	"github.com/detector-net/detector/internal/metrics"
	"github.com/detector-net/detector/internal/pll"
	"github.com/detector-net/detector/internal/pmc"
	"github.com/detector-net/detector/internal/route"
	"github.com/detector-net/detector/internal/sim"
	"github.com/detector-net/detector/internal/topo"
)

// Topology types.
type (
	// Topology is an undirected graph of switches, servers and links.
	Topology = topo.Topology
	// Fattree is a k-ary Fattree topology.
	Fattree = topo.Fattree
	// VL2 is a VL2(DA, DI, T) Clos topology.
	VL2 = topo.VL2
	// BCube is a BCube(n, k) server-centric topology.
	BCube = topo.BCube
	// NodeID identifies a switch or server.
	NodeID = topo.NodeID
	// LinkID identifies an undirected link.
	LinkID = topo.LinkID
	// Node is a switch or server.
	Node = topo.Node
	// Link is an undirected link.
	Link = topo.Link
)

// Topology constructors.
var (
	// NewFattree builds a k-ary Fattree (k even, >= 4).
	NewFattree = topo.NewFattree
	// MustFattree panics on invalid k.
	MustFattree = topo.MustFattree
	// NewVL2 builds a VL2(DA, DI, T).
	NewVL2 = topo.NewVL2
	// MustVL2 panics on invalid parameters.
	MustVL2 = topo.MustVL2
	// NewBCube builds a BCube(n, k).
	NewBCube = topo.NewBCube
	// MustBCube panics on invalid parameters.
	MustBCube = topo.MustBCube
)

// Routing types.
type (
	// PathSet is an index-addressed candidate probe path collection.
	PathSet = route.PathSet
	// Probes is a materialized probe matrix with a link->paths index.
	Probes = route.Probes
	// Component is an independent subproblem of the routing matrix.
	Component = route.Component
)

// Routing constructors.
var (
	// NewFattreePaths enumerates ordered-ToR-pair x core candidates.
	NewFattreePaths = route.NewFattreePaths
	// NewVL2Paths enumerates VL2 candidates.
	NewVL2Paths = route.NewVL2Paths
	// NewBCubePaths enumerates BCube's k+1 parallel paths per pair.
	NewBCubePaths = route.NewBCubePaths
	// NewProbes materializes selected candidates into a probe matrix.
	NewProbes = route.NewProbes
	// DecomposeMatrix splits candidates into independent components.
	DecomposeMatrix = route.Decompose
)

// PMC — the paper's core contribution (§4).
type (
	// PMCOptions configures probe matrix construction.
	PMCOptions = pmc.Options
	// PMCResult is a constructed probe matrix selection.
	PMCResult = pmc.Result
	// PMCStats reports construction statistics.
	PMCStats = pmc.Stats
	// VerifyResult reports independently verified matrix properties.
	VerifyResult = pmc.VerifyResult
)

var (
	// ConstructProbeMatrix runs the PMC greedy.
	ConstructProbeMatrix = pmc.Construct
	// VerifyProbeMatrix checks coverage and identifiability explicitly.
	VerifyProbeMatrix = pmc.Verify
)

// PLL — loss localization (§5).
type (
	// Observation is one probe path's window counters.
	Observation = pll.Observation
	// PLLConfig tunes localization.
	PLLConfig = pll.Config
	// PLLResult is a localization outcome.
	PLLResult = pll.Result
	// Verdict is one suspected link with its estimated loss rate.
	Verdict = pll.Verdict
	// Localizer is the interface shared by PLL and the baselines.
	Localizer = pll.Localizer
)

var (
	// Localize runs PLL on one window of observations.
	Localize = pll.Localize
	// DefaultPLLConfig returns the paper's thresholds (hit ratio 0.6,
	// noise floor 1e-3).
	DefaultPLLConfig = pll.DefaultConfig
	// NewPLL, NewTomo, NewSCORE and NewOMP construct the localizers
	// compared in §5.3.
	NewPLL   = pll.NewPLL
	NewTomo  = pll.NewTomo
	NewSCORE = pll.NewSCORE
	NewOMP   = pll.NewOMP
)

// Simulation substrate.
type (
	// FlowKey is the 5-tuple-plus-DSCP packet identity.
	FlowKey = sim.FlowKey
	// LossModel decides per-flow drop probability on a failed link.
	LossModel = sim.LossModel
	// FullLoss drops everything on the link.
	FullLoss = sim.FullLoss
	// RandomLoss drops packets independently at a fixed rate.
	RandomLoss = sim.RandomLoss
	// DeterministicLoss is a flow-selective blackhole.
	DeterministicLoss = sim.DeterministicLoss
	// Failure binds a loss model to a link.
	Failure = sim.Failure
	// Scenario is a set of concurrent failures.
	Scenario = sim.Scenario
	// FailureConfig parameterizes random scenario generation.
	FailureConfig = sim.FailureConfig
	// Network simulates probing over a topology with active failures.
	Network = sim.Network
	// ProbeWindowConfig shapes one simulated measurement window.
	ProbeWindowConfig = sim.ProbeWindowConfig
)

var (
	// NewScenario builds a scenario from explicit failures.
	NewScenario = sim.NewScenario
	// GenerateScenario draws a random, measurement-shaped scenario.
	GenerateScenario = sim.Generate
	// DefaultFailureConfig mirrors the paper's evaluation mix.
	DefaultFailureConfig = sim.DefaultFailureConfig
	// NewNetwork wires a topology to a scenario.
	NewNetwork = sim.NewNetwork
	// SimulateWindow runs one window over a probe matrix.
	SimulateWindow = sim.SimulateWindow
)

// Evaluation metrics (§5.3 definitions).
type (
	// Confusion compares predicted and true bad-link sets.
	Confusion = metrics.Confusion
)

var (
	// CompareLinks builds a Confusion from predicted and truth.
	CompareLinks = metrics.Compare
)

// Live cluster — the full agent deployment over loopback UDP.
type (
	// Cluster is a running deployment (fabric + services + agents).
	Cluster = cluster.Cluster
	// ClusterOptions shapes a cluster boot.
	ClusterOptions = cluster.Options
)

var (
	// StartCluster boots the whole stack on one machine.
	StartCluster = cluster.Start
)
